#include "serve/fleet.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/evaluator.h"
#include "core/scaling_config.h"
#include "core/strategies.h"
#include "simdb/cluster.h"
#include "stream/ring.h"
#include "ts/metrics.h"

namespace rpas::serve {
namespace {

// Seed-stream salts for the independent per-tenant randomness sources.
constexpr uint64_t kTraceStream = 0x51AE;
constexpr uint64_t kClusterStream = 0xC105;
constexpr uint64_t kFaultStream = 0xFA17;
constexpr uint64_t kRequestStream = 0x5EED;

/// Everything one simulated tenant carries across rounds.
struct TenantState {
  ModelId model;
  size_t context_length = 0;
  ts::TimeSeries series;  ///< history_steps + num_steps observations
  core::ScalingConfig config;
  std::unique_ptr<simdb::Cluster> cluster;
  std::unique_ptr<simdb::FaultInjector> injector;  ///< null when inert
  std::vector<int> plan;
  std::vector<int> last_good_plan;
  std::vector<double> recent;  ///< trailing realized workloads
  int current_nodes = 1;
  // Streaming ingest: realized workload flows through the tenant's ring
  // each step and is drained by the cursor once per planning round.
  std::unique_ptr<stream::IngestRing> ring;
  std::unique_ptr<stream::StreamCursor> cursor;
  uint64_t stream_points = 0;
  // Forecast staleness, in steps since the round a fresh plan landed.
  size_t last_fresh_step = 0;
  uint64_t staleness_sum = 0;
  uint64_t staleness_max = 0;
  // Adaptive selection (selection.enabled only): classifier + selector +
  // pre-scaler, and the newest fresh forecast kept for rolling-wQL scoring.
  std::unique_ptr<select::WorkloadClassifier> classifier;
  std::unique_ptr<select::AdaptiveSelector> selector;
  std::unique_ptr<select::PreScaler> prescaler;
  std::optional<ts::QuantileForecast> live_forecast;
  size_t live_forecast_step = 0;  ///< absolute step of its first prediction
  // Incremental refresh (kIncremental only): the tenant's private fitted
  // forecaster and its refresher. Model staleness is tracked per round.
  std::unique_ptr<forecast::Forecaster> refresh_model;
  std::unique_ptr<stream::IncrementalRefresher> refresher;
  uint64_t model_staleness_sum = 0;
  uint64_t model_staleness_max = 0;
  // Per-step records for final provisioning evaluation.
  std::vector<double> realized;
  std::vector<int> allocation;
  double utilization_sum = 0.0;
  size_t slo_violations = 0;
  TenantSummary summary;
};

/// One serving shard: its own inference engine and admission controller,
/// plus its own model registry when the fleet provides a factory. Tenant
/// state itself is partitioned by the shard map, so everything a shard
/// touches during a round is disjoint from every other shard — rounds fan
/// shards across the thread pool with no locking beyond the metrics
/// sink's atomics.
struct Shard {
  std::unique_ptr<ModelRegistry> owned_registry;  ///< null = shares main
  ModelRegistry* registry = nullptr;
  std::unique_ptr<AdmissionController> admission;
  std::unique_ptr<BatchEngine> engine;
};

void PushRecent(TenantState* tenant, double workload, size_t window) {
  tenant->recent.push_back(workload);
  if (tenant->recent.size() > window) {
    tenant->recent.erase(tenant->recent.begin());
  }
}

void AccumulateCacheStats(const ModelRegistry::CacheStats& from,
                          ModelRegistry::CacheStats* into) {
  into->hits += from.hits;
  into->misses += from.misses;
  into->evictions += from.evictions;
  into->loads += from.loads;
  into->resident_bytes += from.resident_bytes;
  into->resident_models += from.resident_models;
  into->mapped_bytes += from.mapped_bytes;
  into->heap_bytes += from.heap_bytes;
  into->charged_bytes += from.charged_bytes;
  into->pinned_models += from.pinned_models;
  into->pinned_bytes += from.pinned_bytes;
}

}  // namespace

size_t ShardOfTenant(uint64_t tenant_id, size_t num_shards) {
  if (num_shards <= 1) {
    return 0;
  }
  // SplitMix64 finalizer: avalanches the id so consecutive tenants spread
  // across shards instead of striping, and the assignment depends on
  // nothing but (id, num_shards).
  uint64_t x = tenant_id + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

Result<FleetResult> RunFleet(ModelRegistry* registry,
                             const std::vector<ModelId>& models,
                             const FleetOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("fleet needs a model registry");
  }
  if (models.empty()) {
    return Status::InvalidArgument("fleet needs at least one model version");
  }
  if (options.num_tenants == 0 || options.num_steps == 0) {
    return Status::InvalidArgument("fleet needs tenants and steps");
  }
  if (options.replan_every == 0) {
    return Status::InvalidArgument("replan_every must be at least 1");
  }
  if (options.theta_divisor <= 0.0) {
    return Status::InvalidArgument("theta_divisor must be positive");
  }
  const bool selecting = options.selection.enabled;
  const bool incremental =
      options.refresh_mode == core::RefreshMode::kIncremental;
  if (selecting && options.selection.ladder.empty()) {
    return Status::InvalidArgument(
        "fleet selection needs a non-empty model ladder");
  }
  if (selecting && incremental) {
    return Status::InvalidArgument(
        "fleet selection cannot be combined with incremental refresh: "
        "the refresher tracks one model, the ladder switches models");
  }
  if (incremental && options.refresh_model_factory == nullptr) {
    return Status::InvalidArgument(
        "incremental refresh mode needs a refresh_model_factory");
  }

  const core::DegradationPolicy& policy = options.degradation;
  const size_t window = std::max<size_t>(policy.reactive_window, 1);

  // Warm-up pass: verify every referenced version loads and note its
  // context length (the request window size). One Acquire per distinct
  // model; these land in the cache stats as the setup cost of the fleet.
  std::vector<size_t> model_context(models.size(), 0);
  for (size_t m = 0; m < models.size(); ++m) {
    RPAS_ASSIGN_OR_RETURN(std::shared_ptr<const forecast::Forecaster> fc,
                          registry->Acquire(models[m]));
    model_context[m] = fc->ContextLength();
    if (model_context[m] > options.history_steps) {
      return Status::InvalidArgument(StrFormat(
          "%s: context length %zu exceeds history_steps %zu",
          models[m].ToString().c_str(), model_context[m],
          options.history_steps));
    }
  }
  const std::vector<ModelId>& ladder = options.selection.ladder;
  std::vector<size_t> ladder_context(ladder.size(), 0);
  for (size_t m = 0; m < ladder.size(); ++m) {
    RPAS_ASSIGN_OR_RETURN(std::shared_ptr<const forecast::Forecaster> fc,
                          registry->Acquire(ladder[m]));
    ladder_context[m] = fc->ContextLength();
    if (ladder_context[m] > options.history_steps) {
      return Status::InvalidArgument(StrFormat(
          "%s: context length %zu exceeds history_steps %zu",
          ladder[m].ToString().c_str(), ladder_context[m],
          options.history_steps));
    }
  }

  // Shard topology: stable-hash tenant assignment, per-shard serving tier.
  const size_t num_shards = std::max<size_t>(options.num_shards, 1);
  std::vector<size_t> shard_of(options.num_tenants);
  std::vector<std::vector<size_t>> shard_tenants(num_shards);
  for (size_t t = 0; t < options.num_tenants; ++t) {
    shard_of[t] = ShardOfTenant(t, num_shards);
    shard_tenants[shard_of[t]].push_back(t);
  }

  AdmissionController::Options admission_options = options.admission;
  admission_options.metrics = options.metrics;
  BatchEngine::Options engine_options;
  engine_options.batch_across_tenants = options.batched;
  engine_options.metrics = options.metrics;

  std::vector<Shard> shards(num_shards);
  for (Shard& shard : shards) {
    if (options.shard_registry_factory != nullptr) {
      shard.owned_registry = options.shard_registry_factory();
      if (shard.owned_registry == nullptr) {
        return Status::InvalidArgument(
            "shard_registry_factory returned null");
      }
    }
    shard.registry =
        shard.owned_registry != nullptr ? shard.owned_registry.get()
                                        : registry;
    // Every shard's controller is sized to the whole fleet: token buckets
    // are indexed by global tenant id, and the deadline-shed rotation
    // period must be the fleet-wide tenant count on every shard.
    shard.admission = std::make_unique<AdmissionController>(
        admission_options, options.num_tenants);
    shard.engine =
        std::make_unique<BatchEngine>(shard.registry, engine_options);
  }

  // Per-tenant setup: independent synthetic workload, a cluster sized so
  // the trace's swings move the node count, and an independent fault
  // schedule. Every seed derives from the *global* tenant id, so the
  // tenant's trajectory is independent of the shard topology. Setup is
  // embarrassingly parallel across tenants.
  std::vector<TenantState> tenants(options.num_tenants);
  const bool inject = options.faults.Any();
  std::vector<Status> setup_status(options.num_tenants);
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(options.metrics);
  // Resolve the simdb.* instrument bundle once for the whole fleet: the
  // parallel setup below constructs one cluster per tenant, and without a
  // shared bundle every construction would take the metrics registry's
  // name-lookup mutex seven times — a cross-tenant serialization point.
  const simdb::Cluster::MetricHandles cluster_handles =
      simdb::Cluster::MetricHandles::Resolve(metrics);
  ParallelFor(0, options.num_tenants, 1, [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      TenantState& tenant = tenants[t];
      tenant.summary.tenant_id = t;
      tenant.model = models[t % models.size()];
      tenant.summary.model = tenant.model;
      tenant.context_length = model_context[t % models.size()];

      trace::SyntheticTraceGenerator generator(
          options.profile, DeriveSeed(options.seed, kTraceStream + t));
      tenant.series =
          generator.GenerateCpu(options.history_steps + options.num_steps);

      const double mean_history =
          std::accumulate(tenant.series.values.begin(),
                          tenant.series.values.begin() +
                              static_cast<long>(options.history_steps),
                          0.0) /
          static_cast<double>(options.history_steps);
      tenant.config.theta = std::max(mean_history / options.theta_divisor,
                                     1e-9);

      simdb::Cluster::Options cluster_options;
      cluster_options.node_capacity = tenant.config.theta;
      cluster_options.seed = DeriveSeed(options.seed, kClusterStream + t);
      cluster_options.metrics = options.metrics;
      cluster_options.handles = &cluster_handles;
      cluster_options.initial_nodes = core::RequiredNodes(
          tenant.series.values[options.history_steps - 1], tenant.config);
      tenant.cluster = std::make_unique<simdb::Cluster>(cluster_options);
      tenant.current_nodes = cluster_options.initial_nodes;

      if (inject) {
        simdb::FaultPlan plan = options.faults;
        plan.seed = DeriveSeed(options.faults.seed, kFaultStream + t);
        tenant.injector = std::make_unique<simdb::FaultInjector>(plan);
      }

      const size_t ring_capacity =
          options.stream_ring_capacity > 0 ? options.stream_ring_capacity
                                           : 2 * options.replan_every;
      tenant.ring = std::make_unique<stream::IngestRing>(ring_capacity);
      tenant.cursor = std::make_unique<stream::StreamCursor>(tenant.ring.get());

      for (size_t back = std::min(window, options.history_steps); back > 0;
           --back) {
        tenant.recent.push_back(
            tenant.series.values[options.history_steps - back]);
      }

      if (selecting) {
        // Classify the tenant's observed history, seed the starting tier,
        // and point the tenant at that ladder entry. All of this is a pure
        // function of (series, options) — no RNG streams are consumed.
        tenant.classifier = std::make_unique<select::WorkloadClassifier>(
            options.selection.classifier);
        tenant.classifier->PushAll(std::vector<double>(
            tenant.series.values.begin(),
            tenant.series.values.begin() +
                static_cast<long>(options.history_steps)));
        select::SelectorOptions selector_options = options.selection.selector;
        selector_options.ladder_size = ladder.size();
        tenant.selector =
            std::make_unique<select::AdaptiveSelector>(selector_options);
        tenant.selector->SeedFromPattern(tenant.classifier->Classify());
        tenant.model = ladder[tenant.selector->tier()];
        tenant.summary.model = tenant.model;
        tenant.context_length = ladder_context[tenant.selector->tier()];
        if (options.selection.prescale) {
          tenant.prescaler = std::make_unique<select::PreScaler>(
              options.selection.prescaler, tenant.config.min_nodes);
        }
      }

      if (incremental) {
        // Private per-tenant forecaster, fitted on the tenant's own
        // history — the state the refresher keeps current round by round.
        tenant.refresh_model = options.refresh_model_factory(tenant.model);
        if (tenant.refresh_model == nullptr) {
          setup_status[t] =
              Status::InvalidArgument("refresh_model_factory returned null");
          continue;
        }
        const ts::TimeSeries history =
            tenant.series.Slice(0, options.history_steps);
        Status fitted = tenant.refresh_model->Fit(history);
        if (!fitted.ok()) {
          setup_status[t] = std::move(fitted);
          continue;
        }
        tenant.refresher = std::make_unique<stream::IncrementalRefresher>(
            tenant.refresh_model.get(), options.refresher);
        setup_status[t] = tenant.refresher->Prime(history);
      }
    }
  });
  for (Status& status : setup_status) {
    if (!status.ok()) {
      return std::move(status);
    }
  }

  const core::RobustQuantileAllocator allocator(options.tau);

  // Observed once per tenant per round inside the parallel shard phase —
  // striped, so concurrent shards write per-thread-slot cache lines
  // instead of CAS-contending on one histogram (deterministic export is
  // unchanged: integer bucket counts merge exactly).
  obs::Histogram* staleness_hist =
      metrics->GetStripedHistogram("serve.stream.staleness_steps");

  FleetResult result;
  result.tenants.resize(options.num_tenants);

  enum class RoundPlan { kFresh, kStale, kFallback };

  // Per-round scratch, hoisted so round iterations recycle capacity.
  std::vector<RoundPlan> disposition;
  std::vector<uint8_t> wants_fresh;
  std::vector<std::vector<obs::ScalingDecision>> round_decisions(
      options.collect_decisions ? options.num_tenants : 0);

  for (size_t step = 0; step < options.num_steps;
       step += options.replan_every) {
    const size_t round = step / options.replan_every;
    ++result.rounds;
    for (Shard& shard : shards) {
      shard.admission->BeginRound();
    }

    // Phase 1: decide each tenant's round disposition (injected forecaster
    // faults first — a tenant whose forecaster is down does not compete
    // for the round's inference budget). Per-tenant work; shards fan out.
    disposition.assign(options.num_tenants, RoundPlan::kFresh);
    wants_fresh.assign(options.num_tenants, 0);
    ParallelFor(0, num_shards, 1, [&](size_t s0, size_t s1) {
      for (size_t s = s0; s < s1; ++s) {
        for (size_t t : shard_tenants[s]) {
          TenantState& tenant = tenants[t];
          ++tenant.summary.rounds;
          bool fault_round = false;
          if (tenant.injector != nullptr) {
            const simdb::StepFaults faults =
                tenant.injector->FaultsForStep(step);
            const int attempts = faults.forecaster_timeout_attempts +
                                 (faults.forecaster_nan ? 1 : 0);
            if (faults.stale_forecast && !tenant.last_good_plan.empty()) {
              disposition[t] = RoundPlan::kStale;
              fault_round = true;
            } else if (attempts > policy.max_retries) {
              disposition[t] = RoundPlan::kFallback;
              ++tenant.summary.fault_rounds;
              fault_round = true;
            }
          }
          if (tenant.selector != nullptr) {
            // Score the expiring plan's forecast against what realized and
            // feed the selector one round; the round's model — and with it
            // the request's context length — comes from the updated tier.
            double wql = 0.0;
            bool wql_valid = false;
            if (tenant.live_forecast.has_value() &&
                step > tenant.live_forecast_step) {
              const size_t elapsed = std::min<size_t>(
                  step - tenant.live_forecast_step,
                  tenant.live_forecast->Horizon());
              const size_t begin =
                  options.history_steps + tenant.live_forecast_step;
              const std::vector<double> actual(
                  tenant.series.values.begin() + static_cast<long>(begin),
                  tenant.series.values.begin() +
                      static_cast<long>(begin + elapsed));
              wql = ts::PrefixMeanWql(*tenant.live_forecast, actual);
              wql_valid = true;
            }
            tenant.selector->ObserveRound(wql, wql_valid, fault_round);
            tenant.model = ladder[tenant.selector->tier()];
            tenant.context_length = ladder_context[tenant.selector->tier()];
          }
          if (!fault_round) {
            wants_fresh[t] = 1;
          }
        }
      }
    });

    // The global requesting list, ascending by tenant id — the exact order
    // the unsharded fleet submits, which the deadline shed ranks against.
    std::vector<uint64_t> requesting;
    for (size_t t = 0; t < options.num_tenants; ++t) {
      if (wants_fresh[t] != 0) {
        requesting.push_back(t);
      }
    }
    result.requests_submitted += requesting.size();

    // Phase 2: admission. Token buckets are per-tenant, so each shard
    // screens and charges its own tenants on its own controller; the
    // deadline shed runs once, globally, over the merged candidate list —
    // that split is what keeps S-shard verdicts bit-identical to one
    // controller seeing the whole fleet.
    std::vector<std::vector<uint64_t>> sub_tenants(num_shards);
    std::vector<std::vector<size_t>> sub_to_global(num_shards);
    std::vector<size_t> sub_index(requesting.size(), 0);
    for (size_t i = 0; i < requesting.size(); ++i) {
      const size_t s = shard_of[requesting[i]];
      sub_index[i] = sub_tenants[s].size();
      sub_tenants[s].push_back(requesting[i]);
      sub_to_global[s].push_back(i);
    }

    std::vector<AdmissionVerdict> verdicts(requesting.size(),
                                           AdmissionVerdict::kThrottled);
    std::vector<std::vector<AdmissionVerdict>> sub_verdicts(num_shards);
    std::vector<std::vector<size_t>> sub_candidates(num_shards);
    std::vector<size_t> global_candidates;
    for (size_t s = 0; s < num_shards; ++s) {
      shards[s].admission->TokenScreen(sub_tenants[s], &sub_verdicts[s],
                                       &sub_candidates[s]);
      for (size_t c : sub_candidates[s]) {
        global_candidates.push_back(sub_to_global[s][c]);
      }
    }
    // Ascending entry order — what one controller screening the merged
    // list would have produced.
    std::sort(global_candidates.begin(), global_candidates.end());
    AdmissionController::SelectWithinBudget(
        shards[0].admission->round(), options.num_tenants,
        admission_options.round_budget, requesting, &global_candidates,
        &verdicts);
    // Push the shed marks down to the shard-local verdict slates, commit
    // each shard (charges buckets, counts metrics), and lift the admitted
    // marks back up.
    std::vector<std::vector<size_t>> sub_survivors(num_shards);
    for (size_t i : global_candidates) {
      sub_survivors[shard_of[requesting[i]]].push_back(sub_index[i]);
    }
    for (size_t i = 0; i < requesting.size(); ++i) {
      sub_verdicts[shard_of[requesting[i]]][sub_index[i]] = verdicts[i];
    }
    for (size_t s = 0; s < num_shards; ++s) {
      shards[s].admission->Commit(sub_tenants[s], sub_survivors[s],
                                  &sub_verdicts[s]);
    }
    for (size_t i = 0; i < requesting.size(); ++i) {
      verdicts[i] = sub_verdicts[shard_of[requesting[i]]][sub_index[i]];
    }

    // Throttled and shed tenants degrade to the reactive fallback — their
    // round is served, just not with a fresh forecast.
    std::vector<std::vector<size_t>> shard_admitted(num_shards);
    for (size_t i = 0; i < requesting.size(); ++i) {
      const size_t t = requesting[i];
      TenantState& tenant = tenants[t];
      switch (verdicts[i]) {
        case AdmissionVerdict::kAdmitted:
          ++result.requests_admitted;
          shard_admitted[shard_of[t]].push_back(t);
          break;
        case AdmissionVerdict::kThrottled:
          ++result.requests_throttled;
          ++tenant.summary.throttled_rounds;
          disposition[t] = RoundPlan::kFallback;
          break;
        case AdmissionVerdict::kDeadlineShed:
          ++result.requests_shed;
          ++tenant.summary.shed_rounds;
          disposition[t] = RoundPlan::kFallback;
          break;
      }
    }

    // Phases 3+4, fused per shard and fanned across the pool. ParallelFor
    // claims shard indices dynamically, so a thread that finishes a cheap
    // shard steals the next unstarted one. Everything inside is disjoint
    // per shard: requests, engine, tenant state, decision buffers.
    const size_t round_end =
        std::min(step + options.replan_every, options.num_steps);
    ParallelFor(0, num_shards, 1, [&](size_t s0, size_t s1) {
      for (size_t s = s0; s < s1; ++s) {
        // Incremental refresh: drain the round's ingested points from each
        // tenant's ring and fold them into the tenant's private forecaster
        // *before* serving, so admitted requests run against a model that
        // has seen everything realized so far (model staleness 0). A
        // refresh error degrades the tenant to the reactive fallback for
        // the round — never the whole fleet.
        std::vector<double> refresh_scratch;
        for (size_t t : shard_tenants[s]) {
          TenantState& tenant = tenants[t];
          uint64_t model_staleness = static_cast<uint64_t>(step);
          if (tenant.refresher != nullptr) {
            if (tenant.live_forecast.has_value() &&
                step > tenant.live_forecast_step) {
              const size_t elapsed = std::min<size_t>(
                  step - tenant.live_forecast_step,
                  tenant.live_forecast->Horizon());
              const size_t begin =
                  options.history_steps + tenant.live_forecast_step;
              const std::vector<double> actual(
                  tenant.series.values.begin() + static_cast<long>(begin),
                  tenant.series.values.begin() +
                      static_cast<long>(begin + elapsed));
              tenant.refresher->ObserveForecastLoss(
                  ts::PrefixMeanWql(*tenant.live_forecast, actual));
            }
            refresh_scratch.clear();
            const stream::StreamCursor::Batch batch =
                tenant.cursor->Poll(&refresh_scratch);
            tenant.stream_points += batch.count;
            const ts::TimeSeries observed =
                tenant.series.Slice(0, options.history_steps + step);
            auto outcome = tenant.refresher->Refresh(observed, batch.count,
                                                     batch.missed);
            if (outcome.ok()) {
              model_staleness = 0;
            } else if (disposition[t] == RoundPlan::kFresh) {
              ++tenant.summary.error_rounds;
              disposition[t] = RoundPlan::kFallback;
            }
          }
          tenant.model_staleness_sum += model_staleness;
          tenant.model_staleness_max =
              std::max(tenant.model_staleness_max, model_staleness);
        }

        // Phase 3: serve the admitted requests — through the shard's
        // engine in kBatch mode, or directly from each tenant's refreshed
        // private forecaster in kIncremental mode (per-tenant state cannot
        // be cross-tenant batched; the request seed derivation is byte-for
        // -byte the same). Any per-request error degrades that tenant to
        // the fallback — never the whole round.
        std::vector<ForecastRequest> requests;
        std::vector<size_t> request_tenant;
        requests.reserve(shard_admitted[s].size());
        request_tenant.reserve(shard_admitted[s].size());
        for (size_t t : shard_admitted[s]) {
          TenantState& tenant = tenants[t];
          if (disposition[t] != RoundPlan::kFresh) {
            continue;  // refresh error already degraded this round
          }
          ForecastRequest request;
          request.tenant_id = t;
          request.model = tenant.model;
          const size_t end = options.history_steps + step;
          request.input.context.assign(
              tenant.series.values.begin() +
                  static_cast<long>(end - tenant.context_length),
              tenant.series.values.begin() + static_cast<long>(end));
          request.input.start_index = end - tenant.context_length;
          request.input.step_minutes = tenant.series.step_minutes;
          request.seed =
              DeriveSeed(DeriveSeed(options.seed, kRequestStream + t), round);
          requests.push_back(std::move(request));
          request_tenant.push_back(t);
        }
        std::vector<ForecastResponse> responses;
        if (incremental) {
          responses.resize(requests.size());
          for (size_t k = 0; k < requests.size(); ++k) {
            TenantState& tenant = tenants[request_tenant[k]];
            auto forecast_or = tenant.refresh_model->PredictSeeded(
                requests[k].input, requests[k].seed);
            if (forecast_or.ok()) {
              responses[k].forecast = std::move(*forecast_or);
            } else {
              responses[k].status = forecast_or.status();
            }
          }
        } else {
          responses = shards[s].engine->Execute(requests);
        }
        for (size_t k = 0; k < responses.size(); ++k) {
          const size_t t = request_tenant[k];
          TenantState& tenant = tenants[t];
          if (!responses[k].ok()) {
            ++tenant.summary.error_rounds;
            disposition[t] = RoundPlan::kFallback;
            continue;
          }
          auto plan =
              allocator.Allocate(responses[k].forecast, tenant.config);
          if (!plan.ok()) {
            ++tenant.summary.error_rounds;
            disposition[t] = RoundPlan::kFallback;
            continue;
          }
          tenant.plan = std::move(*plan);
          tenant.last_good_plan = tenant.plan;
          tenant.last_fresh_step = step;
          ++tenant.summary.fresh_rounds;
          if (tenant.selector != nullptr || tenant.refresher != nullptr) {
            // Keep the fresh forecast for next round's rolling-wQL score
            // (selector promotion/demotion, refresher drift guard).
            tenant.live_forecast = responses[k].forecast;
            tenant.live_forecast_step = step;
          }
          if (tenant.prescaler != nullptr) {
            // The fresh quantile plan is the spike predictor: schedule a
            // floor raise lead_steps ahead of any predicted spike.
            tenant.prescaler->ObservePlan(tenant.plan, step);
          }
        }
        for (size_t t : shard_tenants[s]) {
          TenantState& tenant = tenants[t];
          switch (disposition[t]) {
            case RoundPlan::kFresh:
              break;  // plan already installed (or errored into fallback)
            case RoundPlan::kStale:
              tenant.plan = tenant.last_good_plan;
              ++tenant.summary.stale_rounds;
              break;
            case RoundPlan::kFallback:
              tenant.plan = core::BuildFallbackPlan(
                  tenant.recent, tenant.last_good_plan, tenant.current_nodes,
                  tenant.config, policy);
              ++tenant.summary.fallback_rounds;
              break;
          }
          if (tenant.plan.empty()) {
            // First round shed before any good plan existed: hold current.
            tenant.plan.assign(1, tenant.current_nodes);
          }
        }

        // Phase 4: drive the shard's clusters to the next planning round.
        std::vector<double> drained;  // shard-local cursor scratch
        for (size_t t : shard_tenants[s]) {
          TenantState& tenant = tenants[t];
          for (size_t st = step; st < round_end; ++st) {
            simdb::StepFaults faults;
            if (tenant.injector != nullptr) {
              faults = tenant.injector->FaultsForStep(st);
              if (faults.Any()) {
                ++tenant.summary.faulted_steps;
              }
            }
            const size_t cursor = st - step;
            int target =
                tenant.plan[std::min(cursor, tenant.plan.size() - 1)];
            if (tenant.prescaler != nullptr) {
              // Monotone merge: the pre-scale floor can only raise the
              // decision, never fight the reactive plan downward.
              target = tenant.prescaler->Merge(target, st);
            }
            const double workload =
                tenant.series.values[options.history_steps + st];
            const simdb::StepStats stats =
                tenant.cluster->Step(target, workload, faults);
            tenant.realized.push_back(stats.workload);
            tenant.allocation.push_back(target);
            tenant.utilization_sum += stats.avg_utilization;
            if (stats.slo_violated) {
              ++tenant.slo_violations;
            }
            PushRecent(&tenant, stats.workload, window);
            if (tenant.classifier != nullptr) {
              tenant.classifier->Push(stats.workload);
            }
            tenant.ring->Push(stats.workload);
            const uint64_t staleness =
                static_cast<uint64_t>(st - tenant.last_fresh_step);
            tenant.staleness_sum += staleness;
            tenant.staleness_max = std::max(tenant.staleness_max, staleness);
            staleness_hist->Observe(static_cast<double>(staleness));
            tenant.current_nodes = tenant.cluster->NumNodes();
            if (options.collect_decisions) {
              obs::ScalingDecision decision;
              decision.run = StrFormat("tenant%zu", t);
              decision.step = st;
              decision.target_nodes = stats.target_nodes;
              decision.active_nodes = stats.active_nodes;
              decision.workload = stats.workload;
              decision.utilization = stats.avg_utilization;
              decision.under_provisioned = stats.under_provisioned;
              decision.slo_violated = stats.slo_violated;
              round_decisions[t].push_back(std::move(decision));
              round_decisions[t].back().faulted = faults.Any();
            }
          }
          // Drain the round's ingested observations through the cursor —
          // the same "new since last seq" contract the streaming online
          // loop consumes; capacity >= 2 * replan_every makes this
          // drop-free. In incremental mode the refresher drains instead,
          // at the top of the next round, so the points feed the model.
          if (!incremental) {
            drained.clear();
            const stream::StreamCursor::Batch batch =
                tenant.cursor->Poll(&drained);
            tenant.stream_points += batch.count;
          }
        }
      }
    });

    // Merge the round's decision records in the legacy order (tenant
    // ascending, step ascending) regardless of which thread ran which
    // shard, keeping the export stream deterministic.
    if (options.collect_decisions) {
      for (size_t t = 0; t < options.num_tenants; ++t) {
        for (obs::ScalingDecision& decision : round_decisions[t]) {
          result.decisions.push_back(std::move(decision));
        }
        round_decisions[t].clear();
      }
    }
  }

  // Final accounting.
  for (size_t t = 0; t < options.num_tenants; ++t) {
    TenantState& tenant = tenants[t];
    const core::ProvisioningReport report = core::EvaluateAllocation(
        tenant.realized, tenant.allocation, tenant.config);
    tenant.summary.under_provision_rate = report.under_provision_rate;
    tenant.summary.over_provision_rate = report.over_provision_rate;
    tenant.summary.mean_utilization =
        tenant.utilization_sum / static_cast<double>(options.num_steps);
    tenant.summary.slo_violation_rate =
        static_cast<double>(tenant.slo_violations) /
        static_cast<double>(options.num_steps);
    tenant.summary.stream_points = tenant.stream_points;
    // Missed, not ring->dropped(): the ring advances its tail as soon as a
    // slot is overwritten, whether or not the cursor had already read it —
    // only the cursor knows which points were truly lost.
    tenant.summary.stream_dropped = tenant.cursor->missed_total();
    tenant.summary.mean_staleness_steps =
        static_cast<double>(tenant.staleness_sum) /
        static_cast<double>(options.num_steps);
    tenant.summary.max_staleness_steps = tenant.staleness_max;
    tenant.summary.mean_model_staleness_steps =
        static_cast<double>(tenant.model_staleness_sum) /
        static_cast<double>(result.rounds);
    tenant.summary.max_model_staleness_steps = tenant.model_staleness_max;
    if (tenant.selector != nullptr) {
      if (tenant.prescaler != nullptr) {
        // Force rollback of any in-flight floor raise so activations
        // balance rollbacks at the end of every run.
        tenant.prescaler->Finish();
        tenant.summary.prescale = tenant.prescaler->stats();
      }
      tenant.summary.final_tier = tenant.selector->tier();
      tenant.summary.pattern = tenant.classifier->Classify();
      tenant.summary.selector = tenant.selector->stats();
      tenant.summary.model = ladder[tenant.selector->tier()];
      result.tier_switches += tenant.summary.selector.switches;
      result.tier_promotions += tenant.summary.selector.promotions;
      result.tier_demotions += tenant.summary.selector.probe_demotions +
                               tenant.summary.selector.fault_demotions +
                               tenant.summary.selector.drift_demotions;
      result.prescale_activations += tenant.summary.prescale.activations;
      result.prescale_rollbacks += tenant.summary.prescale.rollbacks;
      result.prescale_floor_raised_steps +=
          tenant.summary.prescale.floor_raised_steps;
    }
    if (tenant.refresher != nullptr) {
      const stream::RefreshStats& rs = tenant.refresher->stats();
      result.refresh.refreshes += rs.refreshes;
      result.refresh.points_consumed += rs.points_consumed;
      result.refresh.recursive_updates += rs.recursive_updates;
      result.refresh.fine_tunes += rs.fine_tunes;
      result.refresh.gradient_steps += rs.gradient_steps;
      result.refresh.resyncs += rs.resyncs;
      result.refresh.full_retrains += rs.full_retrains;
    }
    result.mean_model_staleness_steps +=
        tenant.summary.mean_model_staleness_steps;
    result.max_model_staleness_steps =
        std::max(result.max_model_staleness_steps,
                 tenant.summary.max_model_staleness_steps);
    result.tenants[t] = tenant.summary;
    result.mean_under_provision_rate += tenant.summary.under_provision_rate;
    result.mean_over_provision_rate += tenant.summary.over_provision_rate;
    result.mean_utilization += tenant.summary.mean_utilization;
    result.mean_slo_violation_rate += tenant.summary.slo_violation_rate;
    result.stream_points += tenant.summary.stream_points;
    result.stream_dropped += tenant.summary.stream_dropped;
    result.mean_staleness_steps += tenant.summary.mean_staleness_steps;
    result.max_staleness_steps =
        std::max(result.max_staleness_steps, tenant.summary.max_staleness_steps);
  }
  const double n = static_cast<double>(options.num_tenants);
  result.mean_under_provision_rate /= n;
  result.mean_over_provision_rate /= n;
  result.mean_utilization /= n;
  result.mean_slo_violation_rate /= n;
  result.mean_staleness_steps /= n;
  result.mean_model_staleness_steps /= n;
  if (selecting) {
    // serve.select.* counters are bulk-incremented from the finished
    // result, so registry values agree exactly with the result fields.
    metrics->GetCounter("serve.select.switches")
        ->Increment(static_cast<int64_t>(result.tier_switches));
    metrics->GetCounter("serve.select.promotions")
        ->Increment(static_cast<int64_t>(result.tier_promotions));
    metrics->GetCounter("serve.select.demotions")
        ->Increment(static_cast<int64_t>(result.tier_demotions));
    metrics->GetCounter("serve.select.prescale.activations")
        ->Increment(static_cast<int64_t>(result.prescale_activations));
    metrics->GetCounter("serve.select.prescale.rollbacks")
        ->Increment(static_cast<int64_t>(result.prescale_rollbacks));
    metrics->GetCounter("serve.select.prescale.floor_raised_steps")
        ->Increment(static_cast<int64_t>(result.prescale_floor_raised_steps));
  }
  if (incremental) {
    metrics->GetCounter("serve.refresh.rounds")
        ->Increment(static_cast<int64_t>(result.refresh.refreshes));
    metrics->GetCounter("serve.refresh.points_consumed")
        ->Increment(static_cast<int64_t>(result.refresh.points_consumed));
    metrics->GetCounter("serve.refresh.resyncs")
        ->Increment(static_cast<int64_t>(result.refresh.resyncs));
    metrics->GetCounter("serve.refresh.full_retrains")
        ->Increment(static_cast<int64_t>(result.refresh.full_retrains));
  }
  result.cache = registry->GetCacheStats();
  for (const Shard& shard : shards) {
    if (shard.owned_registry != nullptr) {
      AccumulateCacheStats(shard.owned_registry->GetCacheStats(),
                           &result.cache);
    }
  }
  return result;
}

}  // namespace rpas::serve
