#include "serve/fleet.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "core/evaluator.h"
#include "core/scaling_config.h"
#include "core/strategies.h"
#include "simdb/cluster.h"

namespace rpas::serve {
namespace {

// Seed-stream salts for the independent per-tenant randomness sources.
constexpr uint64_t kTraceStream = 0x51AE;
constexpr uint64_t kClusterStream = 0xC105;
constexpr uint64_t kFaultStream = 0xFA17;
constexpr uint64_t kRequestStream = 0x5EED;

/// Everything one simulated tenant carries across rounds.
struct TenantState {
  ModelId model;
  size_t context_length = 0;
  ts::TimeSeries series;  ///< history_steps + num_steps observations
  core::ScalingConfig config;
  std::unique_ptr<simdb::Cluster> cluster;
  std::unique_ptr<simdb::FaultInjector> injector;  ///< null when inert
  std::vector<int> plan;
  std::vector<int> last_good_plan;
  std::vector<double> recent;  ///< trailing realized workloads
  int current_nodes = 1;
  // Per-step records for final provisioning evaluation.
  std::vector<double> realized;
  std::vector<int> allocation;
  double utilization_sum = 0.0;
  size_t slo_violations = 0;
  TenantSummary summary;
};

void PushRecent(TenantState* tenant, double workload, size_t window) {
  tenant->recent.push_back(workload);
  if (tenant->recent.size() > window) {
    tenant->recent.erase(tenant->recent.begin());
  }
}

}  // namespace

Result<FleetResult> RunFleet(ModelRegistry* registry,
                             const std::vector<ModelId>& models,
                             const FleetOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("fleet needs a model registry");
  }
  if (models.empty()) {
    return Status::InvalidArgument("fleet needs at least one model version");
  }
  if (options.num_tenants == 0 || options.num_steps == 0) {
    return Status::InvalidArgument("fleet needs tenants and steps");
  }
  if (options.replan_every == 0) {
    return Status::InvalidArgument("replan_every must be at least 1");
  }
  if (options.theta_divisor <= 0.0) {
    return Status::InvalidArgument("theta_divisor must be positive");
  }

  const core::DegradationPolicy& policy = options.degradation;
  const size_t window = std::max<size_t>(policy.reactive_window, 1);

  // Warm-up pass: verify every referenced version loads and note its
  // context length (the request window size). One Acquire per distinct
  // model; these land in the cache stats as the setup cost of the fleet.
  std::vector<size_t> model_context(models.size(), 0);
  for (size_t m = 0; m < models.size(); ++m) {
    RPAS_ASSIGN_OR_RETURN(std::shared_ptr<const forecast::Forecaster> fc,
                          registry->Acquire(models[m]));
    model_context[m] = fc->ContextLength();
    if (model_context[m] > options.history_steps) {
      return Status::InvalidArgument(StrFormat(
          "%s: context length %zu exceeds history_steps %zu",
          models[m].ToString().c_str(), model_context[m],
          options.history_steps));
    }
  }

  // Per-tenant setup: independent synthetic workload, a cluster sized so
  // the trace's swings move the node count, and an independent fault
  // schedule.
  std::vector<TenantState> tenants(options.num_tenants);
  const bool inject = options.faults.Any();
  for (size_t t = 0; t < options.num_tenants; ++t) {
    TenantState& tenant = tenants[t];
    tenant.summary.tenant_id = t;
    tenant.model = models[t % models.size()];
    tenant.summary.model = tenant.model;
    tenant.context_length = model_context[t % models.size()];

    trace::SyntheticTraceGenerator generator(
        options.profile, DeriveSeed(options.seed, kTraceStream + t));
    tenant.series =
        generator.GenerateCpu(options.history_steps + options.num_steps);

    const double mean_history =
        std::accumulate(tenant.series.values.begin(),
                        tenant.series.values.begin() +
                            static_cast<long>(options.history_steps),
                        0.0) /
        static_cast<double>(options.history_steps);
    tenant.config.theta = std::max(mean_history / options.theta_divisor,
                                   1e-9);

    simdb::Cluster::Options cluster_options;
    cluster_options.node_capacity = tenant.config.theta;
    cluster_options.seed = DeriveSeed(options.seed, kClusterStream + t);
    cluster_options.metrics = options.metrics;
    cluster_options.initial_nodes = core::RequiredNodes(
        tenant.series.values[options.history_steps - 1], tenant.config);
    tenant.cluster = std::make_unique<simdb::Cluster>(cluster_options);
    tenant.current_nodes = cluster_options.initial_nodes;

    if (inject) {
      simdb::FaultPlan plan = options.faults;
      plan.seed = DeriveSeed(options.faults.seed, kFaultStream + t);
      tenant.injector = std::make_unique<simdb::FaultInjector>(plan);
    }

    for (size_t back = std::min(window, options.history_steps); back > 0;
         --back) {
      tenant.recent.push_back(
          tenant.series.values[options.history_steps - back]);
    }
  }

  core::RobustQuantileAllocator allocator(options.tau);
  AdmissionController::Options admission_options = options.admission;
  admission_options.metrics = options.metrics;
  AdmissionController admission(admission_options, options.num_tenants);
  BatchEngine::Options engine_options;
  engine_options.batch_across_tenants = options.batched;
  engine_options.metrics = options.metrics;
  BatchEngine engine(registry, engine_options);

  FleetResult result;
  result.tenants.resize(options.num_tenants);

  enum class RoundPlan { kFresh, kStale, kFallback };

  for (size_t step = 0; step < options.num_steps;
       step += options.replan_every) {
    const size_t round = step / options.replan_every;
    ++result.rounds;
    admission.BeginRound();

    // Phase 1: decide each tenant's round disposition (injected forecaster
    // faults first — a tenant whose forecaster is down does not compete
    // for the round's inference budget).
    std::vector<RoundPlan> disposition(options.num_tenants,
                                       RoundPlan::kFresh);
    std::vector<uint64_t> requesting;
    for (size_t t = 0; t < options.num_tenants; ++t) {
      TenantState& tenant = tenants[t];
      ++tenant.summary.rounds;
      if (tenant.injector != nullptr) {
        const simdb::StepFaults faults =
            tenant.injector->FaultsForStep(step);
        const int attempts = faults.forecaster_timeout_attempts +
                             (faults.forecaster_nan ? 1 : 0);
        if (faults.stale_forecast && !tenant.last_good_plan.empty()) {
          disposition[t] = RoundPlan::kStale;
          continue;
        }
        if (attempts > policy.max_retries) {
          disposition[t] = RoundPlan::kFallback;
          ++tenant.summary.fault_rounds;
          continue;
        }
      }
      requesting.push_back(t);
    }

    // Phase 2: admission. Throttled and shed tenants degrade to the
    // reactive fallback — their round is served, just not with a fresh
    // forecast.
    const std::vector<AdmissionVerdict> verdicts =
        admission.AdmitRound(requesting);
    result.requests_submitted += requesting.size();
    std::vector<ForecastRequest> requests;
    std::vector<size_t> request_tenant;
    for (size_t k = 0; k < requesting.size(); ++k) {
      const size_t t = requesting[k];
      TenantState& tenant = tenants[t];
      switch (verdicts[k]) {
        case AdmissionVerdict::kAdmitted: {
          ++result.requests_admitted;
          ForecastRequest request;
          request.tenant_id = t;
          request.model = tenant.model;
          const size_t end = options.history_steps + step;
          request.input.context.assign(
              tenant.series.values.begin() +
                  static_cast<long>(end - tenant.context_length),
              tenant.series.values.begin() + static_cast<long>(end));
          request.input.start_index = end - tenant.context_length;
          request.input.step_minutes = tenant.series.step_minutes;
          request.seed =
              DeriveSeed(DeriveSeed(options.seed, kRequestStream + t), round);
          requests.push_back(std::move(request));
          request_tenant.push_back(t);
          break;
        }
        case AdmissionVerdict::kThrottled:
          ++result.requests_throttled;
          ++tenant.summary.throttled_rounds;
          disposition[t] = RoundPlan::kFallback;
          break;
        case AdmissionVerdict::kDeadlineShed:
          ++result.requests_shed;
          ++tenant.summary.shed_rounds;
          disposition[t] = RoundPlan::kFallback;
          break;
      }
    }

    // Phase 3: serve the admitted requests through the engine and map
    // forecasts to plans. Any per-request error degrades that tenant to
    // the fallback — never the whole round.
    const std::vector<ForecastResponse> responses = engine.Execute(requests);
    for (size_t k = 0; k < responses.size(); ++k) {
      const size_t t = request_tenant[k];
      TenantState& tenant = tenants[t];
      if (!responses[k].ok()) {
        ++tenant.summary.error_rounds;
        disposition[t] = RoundPlan::kFallback;
        continue;
      }
      auto plan = allocator.Allocate(responses[k].forecast, tenant.config);
      if (!plan.ok()) {
        ++tenant.summary.error_rounds;
        disposition[t] = RoundPlan::kFallback;
        continue;
      }
      tenant.plan = std::move(*plan);
      tenant.last_good_plan = tenant.plan;
      ++tenant.summary.fresh_rounds;
    }
    for (size_t t = 0; t < options.num_tenants; ++t) {
      TenantState& tenant = tenants[t];
      switch (disposition[t]) {
        case RoundPlan::kFresh:
          break;  // plan already installed (or errored into fallback)
        case RoundPlan::kStale:
          tenant.plan = tenant.last_good_plan;
          ++tenant.summary.stale_rounds;
          break;
        case RoundPlan::kFallback:
          tenant.plan = core::BuildFallbackPlan(
              tenant.recent, tenant.last_good_plan, tenant.current_nodes,
              tenant.config, policy);
          ++tenant.summary.fallback_rounds;
          break;
      }
      if (tenant.plan.empty()) {
        // First round shed before any good plan existed: hold current.
        tenant.plan.assign(1, tenant.current_nodes);
      }
    }

    // Phase 4: drive every cluster to the next planning round.
    const size_t round_end =
        std::min(step + options.replan_every, options.num_steps);
    for (size_t t = 0; t < options.num_tenants; ++t) {
      TenantState& tenant = tenants[t];
      for (size_t s = step; s < round_end; ++s) {
        simdb::StepFaults faults;
        if (tenant.injector != nullptr) {
          faults = tenant.injector->FaultsForStep(s);
          if (faults.Any()) {
            ++tenant.summary.faulted_steps;
          }
        }
        const size_t cursor = s - step;
        const int target =
            tenant.plan[std::min(cursor, tenant.plan.size() - 1)];
        const double workload =
            tenant.series.values[options.history_steps + s];
        const simdb::StepStats stats =
            tenant.cluster->Step(target, workload, faults);
        tenant.realized.push_back(stats.workload);
        tenant.allocation.push_back(target);
        tenant.utilization_sum += stats.avg_utilization;
        if (stats.slo_violated) {
          ++tenant.slo_violations;
        }
        PushRecent(&tenant, stats.workload, window);
        tenant.current_nodes = tenant.cluster->NumNodes();
        if (options.collect_decisions) {
          obs::ScalingDecision decision;
          decision.run = StrFormat("tenant%zu", t);
          decision.step = s;
          decision.target_nodes = stats.target_nodes;
          decision.active_nodes = stats.active_nodes;
          decision.workload = stats.workload;
          decision.utilization = stats.avg_utilization;
          decision.under_provisioned = stats.under_provisioned;
          decision.slo_violated = stats.slo_violated;
          decision.faulted = faults.Any();
          result.decisions.push_back(std::move(decision));
        }
      }
    }
  }

  // Final accounting.
  for (size_t t = 0; t < options.num_tenants; ++t) {
    TenantState& tenant = tenants[t];
    const core::ProvisioningReport report = core::EvaluateAllocation(
        tenant.realized, tenant.allocation, tenant.config);
    tenant.summary.under_provision_rate = report.under_provision_rate;
    tenant.summary.over_provision_rate = report.over_provision_rate;
    tenant.summary.mean_utilization =
        tenant.utilization_sum / static_cast<double>(options.num_steps);
    tenant.summary.slo_violation_rate =
        static_cast<double>(tenant.slo_violations) /
        static_cast<double>(options.num_steps);
    result.tenants[t] = tenant.summary;
    result.mean_under_provision_rate += tenant.summary.under_provision_rate;
    result.mean_over_provision_rate += tenant.summary.over_provision_rate;
    result.mean_utilization += tenant.summary.mean_utilization;
    result.mean_slo_violation_rate += tenant.summary.slo_violation_rate;
  }
  const double n = static_cast<double>(options.num_tenants);
  result.mean_under_provision_rate /= n;
  result.mean_over_provision_rate /= n;
  result.mean_utilization /= n;
  result.mean_slo_violation_rate /= n;
  result.cache = registry->GetCacheStats();
  return result;
}

}  // namespace rpas::serve
