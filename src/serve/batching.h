#ifndef RPAS_SERVE_BATCHING_H_
#define RPAS_SERVE_BATCHING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "forecast/forecaster.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "ts/quantile_forecast.h"

namespace rpas::serve {

/// One tenant's forecast request against a specific model version.
struct ForecastRequest {
  uint64_t tenant_id = 0;
  ModelId model;
  forecast::ForecastInput input;
  /// Sampling seed for this request. Part of the request identity: the
  /// response is a pure function of (model version, input, seed), which is
  /// what makes batched and unbatched serving comparable bit-for-bit.
  uint64_t seed = 0;
};

/// Per-request outcome. Default-constructed status is OK, so responses can
/// be scatter-written by index from grouped execution.
struct ForecastResponse {
  Status status;
  ts::QuantileForecast forecast;  ///< valid only when status.ok()

  bool ok() const { return status.ok(); }
};

/// Cross-tenant batched inference engine.
///
/// Execute() answers a slate of requests, one response per request in
/// request order. In batched mode, requests naming the same model version
/// are coalesced: the version is acquired from the registry once and all
/// its requests run as one PredictBatch forward pass (tenants share the
/// pass — this is the cross-tenant batching of the serving tier). In
/// unbatched mode every request is served independently in arrival order,
/// acquiring its model each time — the baseline a multi-tenant serving
/// tier without coalescing would run.
///
/// Determinism contract: responses are bit-identical between the two modes
/// and across thread counts, because PredictBatch guarantees element-wise
/// bit-identity with PredictSeeded and request seeds are part of the
/// request, not the execution schedule.
class BatchEngine {
 public:
  struct Options {
    /// Coalesce same-version requests into one forward pass (the point of
    /// the engine); false serves strictly per-request, in request order.
    bool batch_across_tenants = true;
    /// Metrics sink for serve.engine.* instruments; null routes to
    /// obs::MetricsRegistry::Global(). Must outlive the engine.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// `registry` must outlive the engine.
  BatchEngine(ModelRegistry* registry, Options options);

  /// Serves all requests; never fails as a whole — per-request errors
  /// (unknown version, load failure, malformed input) land in the
  /// corresponding response's status.
  std::vector<ForecastResponse> Execute(
      const std::vector<ForecastRequest>& requests);

  const Options& options() const { return options_; }

 private:
  void ExecuteBatched(const std::vector<ForecastRequest>& requests,
                      std::vector<ForecastResponse>* responses);
  void ExecuteUnbatched(const std::vector<ForecastRequest>& requests,
                        std::vector<ForecastResponse>* responses);

  ModelRegistry* registry_;  // not owned
  Options options_;
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::Counter* errors_counter_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
};

}  // namespace rpas::serve

#endif  // RPAS_SERVE_BATCHING_H_
