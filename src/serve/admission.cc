#include "serve/admission.h"

#include <algorithm>

#include "common/logging.h"

namespace rpas::serve {

std::string_view AdmissionVerdictToString(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmitted:
      return "admitted";
    case AdmissionVerdict::kThrottled:
      return "throttled";
    case AdmissionVerdict::kDeadlineShed:
      return "deadline_shed";
  }
  return "unknown";
}

AdmissionController::AdmissionController(Options options, size_t num_tenants)
    : options_(options) {
  RPAS_CHECK(num_tenants > 0);
  RPAS_CHECK(options_.bucket_capacity > 0.0);
  RPAS_CHECK(options_.cost_per_request > 0.0);
  // Buckets start full so the first round is never throttled.
  tokens_.assign(num_tenants, options_.bucket_capacity);
  // Handles resolve once here (never on the admit path); striped because
  // every shard's controller fires the same named instruments during the
  // fleet's parallel phases.
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(options_.metrics);
  admitted_counter_ = metrics->GetStripedCounter("serve.admission.admitted");
  throttled_counter_ =
      metrics->GetStripedCounter("serve.admission.throttled");
  shed_counter_ = metrics->GetStripedCounter("serve.admission.shed");
}

void AdmissionController::BeginRound() {
  ++round_;
  for (double& tokens : tokens_) {
    tokens = std::min(options_.bucket_capacity,
                      tokens + options_.refill_per_round);
  }
}

std::vector<AdmissionVerdict> AdmissionController::AdmitRound(
    const std::vector<uint64_t>& tenants) {
  std::vector<AdmissionVerdict> verdicts;
  std::vector<size_t> candidates;
  TokenScreen(tenants, &verdicts, &candidates);
  SelectWithinBudget(round_, tokens_.size(), options_.round_budget, tenants,
                     &candidates, &verdicts);
  Commit(tenants, candidates, &verdicts);
  return verdicts;
}

void AdmissionController::TokenScreen(
    const std::vector<uint64_t>& tenants,
    std::vector<AdmissionVerdict>* verdicts,
    std::vector<size_t>* candidates) const {
  const size_t num_tenants = tokens_.size();
  verdicts->assign(tenants.size(), AdmissionVerdict::kThrottled);
  // A throttled tenant is out of the running before the deadline budget is
  // allocated (its bucket is left untouched — it pays nothing for a round
  // it did not get).
  candidates->reserve(candidates->size() + tenants.size());
  std::vector<double> pending_cost(num_tenants, 0.0);
  for (size_t i = 0; i < tenants.size(); ++i) {
    RPAS_CHECK(tenants[i] < num_tenants) << "tenant id out of range";
    const size_t t = tenants[i];
    if (tokens_[t] - pending_cost[t] >= options_.cost_per_request) {
      pending_cost[t] += options_.cost_per_request;
      candidates->push_back(i);
    }
  }
}

void AdmissionController::SelectWithinBudget(
    uint64_t round, size_t num_tenants, size_t round_budget,
    const std::vector<uint64_t>& tenants, std::vector<size_t>* candidates,
    std::vector<AdmissionVerdict>* verdicts) {
  // Deadline budget with rotated priority. offset advances one tenant per
  // round, so the shed set cycles instead of always hitting the same
  // tenants.
  if (round_budget == 0 || candidates->size() <= round_budget) {
    return;
  }
  const uint64_t offset = round % num_tenants;
  std::stable_sort(candidates->begin(), candidates->end(),
                   [&](size_t a, size_t b) {
                     const uint64_t pa =
                         (tenants[a] + num_tenants - offset) % num_tenants;
                     const uint64_t pb =
                         (tenants[b] + num_tenants - offset) % num_tenants;
                     return pa < pb;
                   });
  for (size_t k = round_budget; k < candidates->size(); ++k) {
    (*verdicts)[(*candidates)[k]] = AdmissionVerdict::kDeadlineShed;
  }
  candidates->resize(round_budget);
}

void AdmissionController::Commit(const std::vector<uint64_t>& tenants,
                                 const std::vector<size_t>& candidates,
                                 std::vector<AdmissionVerdict>* verdicts) {
  for (size_t i : candidates) {
    (*verdicts)[i] = AdmissionVerdict::kAdmitted;
    tokens_[tenants[i]] -= options_.cost_per_request;
  }
  int64_t admitted = 0;
  int64_t throttled = 0;
  int64_t shed = 0;
  for (AdmissionVerdict v : *verdicts) {
    switch (v) {
      case AdmissionVerdict::kAdmitted:
        ++admitted;
        break;
      case AdmissionVerdict::kThrottled:
        ++throttled;
        break;
      case AdmissionVerdict::kDeadlineShed:
        ++shed;
        break;
    }
  }
  admitted_counter_->Increment(admitted);
  throttled_counter_->Increment(throttled);
  shed_counter_->Increment(shed);
}

double AdmissionController::TokensAvailable(uint64_t tenant_id) const {
  RPAS_CHECK(tenant_id < tokens_.size());
  return tokens_[tenant_id];
}

}  // namespace rpas::serve
