#ifndef RPAS_SERVE_REGISTRY_H_
#define RPAS_SERVE_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "forecast/forecaster.h"
#include "obs/metrics.h"

namespace rpas::serve {

/// Identity of one immutable model version in the registry. Versions are
/// append-only: retraining a tenant's forecaster registers a new version
/// under the same name rather than mutating the old one, so an in-flight
/// request always serves against exactly the weights it asked for.
struct ModelId {
  std::string name;
  uint64_t version = 1;

  bool operator==(const ModelId& other) const {
    return version == other.version && name == other.name;
  }
  bool operator<(const ModelId& other) const {
    if (name != other.name) {
      return name < other.name;
    }
    return version < other.version;
  }
  /// "name@v<version>", used in errors and logs.
  std::string ToString() const;
};

/// Creates an unfitted forecaster configured identically to the one that
/// wrote the version's checkpoint (LoadCheckpoint verifies the
/// architecture signature, so a mismatched factory fails loudly).
using ForecasterFactory =
    std::function<std::unique_ptr<forecast::Forecaster>()>;

/// Versioned checkpoint store with a bounded warm-model cache.
///
/// Registration records where a version's checkpoint lives and how to
/// rebuild its architecture; Acquire() returns a ready-to-serve model,
/// loading the checkpoint on a cache miss and keeping recently used models
/// warm under an LRU policy bounded by a byte budget (checkpoint file
/// size is the accounting unit). Eviction only drops the registry's
/// reference — callers holding a shared_ptr keep serving the evicted
/// model; it is freed when the last request finishes.
///
/// Concurrency (DESIGN.md §15): readers resolve against an immutable
/// snapshot published through an atomic shared_ptr, so a warm-cache
/// Acquire() — the fleet hot path — performs ZERO mutex acquisitions
/// (snapshot load, map lookup, one relaxed LRU-tick store, striped
/// counter increment). Cache misses take a per-version load latch: the
/// first thread to find a version cold loads the checkpoint outside every
/// lock while later callers of the *same* version wait on that version's
/// latch (and count as hits when the load lands, exactly as they would
/// have under the old serialized mutex); callers of *other* versions —
/// warm or cold — are never blocked. All bookkeeping (byte accounting,
/// LRU eviction, snapshot rebuild) happens on the mutator path under a
/// single registry mutex that the hot path never touches. The
/// MutexAcquisitions() probe counts every internal mutex acquisition so
/// tests can assert the warm path stays lock-free.
class ModelRegistry {
 public:
  struct Options {
    /// Upper bound on the summed checkpoint bytes of warm (resident)
    /// models. The bound always holds after Acquire() returns — a version
    /// larger than the whole budget is served but never kept resident.
    size_t cache_budget_bytes = 1 << 20;
    /// Relative budget charge of memory-mapped checkpoint bytes. Mapped
    /// rpasq.v1 weights live in the page cache — shareable across
    /// processes and reclaimable by the kernel under pressure — so a
    /// mapped byte costs the serving host less than a private heap byte.
    /// An entry's budget charge is heap + round(mapped * weight), clamped
    /// to [0, 1]; 1.0 restores the old bytes-are-bytes accounting and 0.0
    /// makes mapped models free. Eviction satisfies
    /// charged_bytes <= cache_budget_bytes (resident_bytes may exceed the
    /// budget when mapped models are discounted — by design).
    double mapped_byte_weight = 0.25;
    /// Metrics sink for the serve.registry.* instruments; null routes to
    /// obs::MetricsRegistry::Global(). Must outlive the registry.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Cache effectiveness counters; values agree exactly with the
  /// serve.registry.* metrics when a dedicated registry is injected.
  struct CacheStats {
    int64_t hits = 0;        ///< Acquire() served from the warm cache
    int64_t misses = 0;      ///< Acquire() had to load a checkpoint
    int64_t evictions = 0;   ///< warm models dropped to respect the budget
    int64_t loads = 0;       ///< checkpoint parses (== misses)
    size_t resident_bytes = 0;
    size_t resident_models = 0;
    /// Split of resident_bytes by backing store. mapped_bytes counts
    /// rpasq.v1 checkpoints served straight from their file mapping —
    /// page-cache-shareable, reclaimable by the kernel; heap_bytes counts
    /// private allocations (text-checkpoint models, plus the no-mmap
    /// fallback buffer). mapped_bytes + heap_bytes == resident_bytes.
    size_t mapped_bytes = 0;
    size_t heap_bytes = 0;
    /// Budget-weighted residency: heap_bytes plus the mapped_byte_weight
    /// share of mapped_bytes. This — not resident_bytes — is what
    /// eviction bounds by cache_budget_bytes.
    size_t charged_bytes = 0;
    /// Models whose weights are still alive because a caller holds a
    /// shared_ptr — warm entries with outstanding references plus evicted
    /// entries whose last holder has not finished. Eviction cannot free
    /// these, so real memory use is resident_bytes + the bytes of evicted
    /// pinned models, not resident_bytes alone. Under concurrent readers
    /// this is conservative (a reader holding a just-superseded snapshot
    /// can make a model look pinned for the instant of the overlap);
    /// quiesced, it is exact.
    size_t pinned_models = 0;
    size_t pinned_bytes = 0;  ///< summed checkpoint bytes of pinned models
  };

  explicit ModelRegistry(Options options);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers a version whose checkpoint already exists at `path`.
  /// The factory must produce a model whose SupportsCheckpoint() is true
  /// and whose configuration matches the checkpoint. Fails with
  /// FailedPrecondition on a duplicate id and InvalidArgument when the
  /// checkpoint file is missing or empty.
  ///
  /// Both checkpoint formats are accepted: the text format (loaded onto the
  /// heap via LoadCheckpoint) and rpasq.v1 (memory-mapped and served in
  /// place via LoadQuantizedCheckpoint; the factory's model must return
  /// true from SupportsQuantizedCheckpoint()). The format is sniffed from
  /// the file magic at load time. Because rpasq files are mapped, the file
  /// at `path` must only ever be replaced by atomic rename — truncating or
  /// rewriting it in place while a model serves from the mapping is
  /// undefined behavior (SIGBUS on a shrunk file).
  Status RegisterVersion(const ModelId& id, const std::string& path,
                         ForecasterFactory factory);

  /// Persists `fitted` to `path` via SaveCheckpoint(), then registers the
  /// version. The fitted model itself is NOT cached — the first Acquire()
  /// round-trips through the checkpoint, proving the version is servable
  /// from disk alone.
  Status RegisterTrained(const ModelId& id, const std::string& path,
                         const forecast::Forecaster& fitted,
                         ForecasterFactory factory);

  /// Returns a ready-to-serve model for the version, loading and caching
  /// it if cold. NotFound for unregistered ids; load errors propagate.
  /// Warm hits are lock-free (see the class comment).
  Result<std::shared_ptr<const forecast::Forecaster>> Acquire(
      const ModelId& id);

  /// Highest registered version for `name`; NotFound when absent.
  /// Lock-free (reads the current snapshot).
  Result<ModelId> Latest(const std::string& name) const;

  size_t NumRegistered() const;
  CacheStats GetCacheStats() const;
  const Options& options() const { return options_; }

  /// Test probe: total internal mutex acquisitions (registry mutex plus
  /// every per-version load latch) since construction. A warm-hit
  /// Acquire() leaves this unchanged — the lock-free hot-path guarantee
  /// is asserted against this counter, not inferred from code review.
  uint64_t MutexAcquisitions() const {
    return mutex_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  /// Registration-time identity shared between the master table and every
  /// snapshot generation. Immutable except for the atomics and the
  /// latch-guarded load flag; outlives any snapshot that references it.
  struct VersionInfo {
    std::string path;
    ForecasterFactory factory;
    /// Checkpoint file size recorded at registration, refreshed from the
    /// actually-loaded file on a successful load (the two can differ when
    /// the checkpoint was replaced on disk in between). Atomic because
    /// the cold-load path reads it outside the registry mutex.
    std::atomic<size_t> registered_bytes{0};
    /// Logical LRU clock, touched with a relaxed store on every Acquire —
    /// shared across snapshot generations so hits never take a lock.
    std::atomic<uint64_t> last_used{0};
    /// Per-version load latch: serializes cold loads of THIS version only.
    /// `loading` is guarded by `load_mu`; waiters block on `load_cv` and
    /// re-check the published snapshot on wake.
    std::mutex load_mu;
    std::condition_variable load_cv;
    bool loading = false;
  };

  /// One reader-visible version entry: identity plus the strong resident
  /// reference (null = cold in this snapshot).
  struct SnapshotEntry {
    std::shared_ptr<VersionInfo> info;
    std::shared_ptr<const forecast::Forecaster> resident;
  };

  /// Immutable generation of the registry, swapped atomically on every
  /// mutation (registration, load commit, eviction). Readers resolve
  /// wholly against one snapshot; old generations die when the last
  /// in-flight reader drops them.
  struct Snapshot {
    std::map<ModelId, SnapshotEntry> entries;
  };

  /// Mutator-side (mu_-guarded) state for one version.
  struct Entry {
    std::shared_ptr<VersionInfo> info;
    size_t bytes = 0;    ///< accounting size while resident
    size_t mapped = 0;   ///< mmap-backed share of `bytes` while resident
    size_t heap = 0;     ///< heap-backed share of `bytes` while resident
    size_t charged = 0;  ///< heap + weighted mapped; the entry's budget cost
    std::shared_ptr<const forecast::Forecaster> resident;  ///< null = cold
    /// Observes the model after eviction: while callers still hold the
    /// shared_ptr the weights stay in memory even though `resident` is
    /// null, and this entry counts toward pinned_bytes until it expires.
    std::weak_ptr<const forecast::Forecaster> alive;
    /// True when the current snapshot carries a strong reference to
    /// `resident` (set by RebuildSnapshotLocked) — the pinned-ness
    /// use_count threshold must discount that internal reference.
    bool in_snapshot = false;

    /// True when callers outside the registry keep the weights alive.
    /// Internal references: the master `resident` plus (when published)
    /// the current snapshot's copy. Call with mu_ held.
    bool PinnedLocked() const {
      if (resident != nullptr) {
        const long internal = in_snapshot ? 2 : 1;
        return resident.use_count() > internal;
      }
      return !alive.expired();
    }
  };

  /// Locks the registry mutex, counting the acquisition for the probe.
  std::unique_lock<std::mutex> LockRegistry() const {
    mutex_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return std::unique_lock<std::mutex>(mu_);
  }
  /// Locks a version's load latch, counting the acquisition.
  std::unique_lock<std::mutex> LockLatch(VersionInfo* info) const {
    mutex_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return std::unique_lock<std::mutex>(info->load_mu);
  }

  /// Miss path: waits on / claims the per-version latch, loads the
  /// checkpoint outside all locks, commits under mu_ and republishes the
  /// snapshot. `info` pins the version identity across the load.
  Result<std::shared_ptr<const forecast::Forecaster>> AcquireCold(
      const ModelId& id, std::shared_ptr<VersionInfo> info);

  /// Builds the fully-loaded model (sniffing the checkpoint format) into
  /// the out-params without touching registry state — any failure returns
  /// a typed Status with the registry bit-for-bit unchanged, so a
  /// checkpoint deleted or corrupted between registration and first
  /// Acquire() is an error on that call, not a poisoned cache. Runs
  /// outside every lock (the caller holds only the per-version `loading`
  /// claim).
  Status LoadVersion(const ModelId& id, VersionInfo* info,
                     std::shared_ptr<const forecast::Forecaster>* out,
                     size_t* bytes_out, size_t* mapped_out,
                     size_t* heap_out) const;

  /// Drops least-recently-used warm models until the budget holds,
  /// preferring unpinned victims (evicting a pinned model cannot free its
  /// bytes until the last in-flight request drops the shared_ptr).
  /// Call with mu_ held; callers must RebuildSnapshotLocked() after.
  void EvictToBudgetLocked();

  /// Fills `pinned_models` / `pinned_bytes` on `stats` from the current
  /// entry table. Call with mu_ held.
  void FillPinnedLocked(CacheStats* stats) const;

  /// Publishes a fresh immutable snapshot built from entries_ and marks
  /// which entries the new generation pins. Call with mu_ held.
  void RebuildSnapshotLocked();

  /// Publishes resident/mapped/heap/pinned byte totals to the gauges.
  /// Call with mu_ held.
  void PublishBytesLocked();

  Options options_;
  mutable std::mutex mu_;
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  std::map<ModelId, Entry> entries_;
  size_t resident_bytes_ = 0;
  size_t mapped_bytes_ = 0;
  size_t heap_bytes_ = 0;
  size_t charged_bytes_ = 0;
  std::atomic<uint64_t> tick_{0};
  std::atomic<int64_t> stat_hits_{0};
  std::atomic<int64_t> stat_misses_{0};
  std::atomic<int64_t> stat_evictions_{0};
  std::atomic<int64_t> stat_loads_{0};
  mutable std::atomic<uint64_t> mutex_acquisitions_{0};
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* loads_ = nullptr;
  obs::Gauge* resident_bytes_gauge_ = nullptr;
  obs::Gauge* mapped_bytes_gauge_ = nullptr;
  obs::Gauge* heap_bytes_gauge_ = nullptr;
  obs::Gauge* charged_bytes_gauge_ = nullptr;
  obs::Gauge* pinned_bytes_gauge_ = nullptr;
};

}  // namespace rpas::serve

#endif  // RPAS_SERVE_REGISTRY_H_
