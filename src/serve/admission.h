#ifndef RPAS_SERVE_ADMISSION_H_
#define RPAS_SERVE_ADMISSION_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace rpas::serve {

/// Outcome of admission for one tenant's planning-round request.
enum class AdmissionVerdict : int {
  kAdmitted = 0,      ///< request proceeds to the inference engine
  kThrottled = 1,     ///< tenant exhausted its token bucket this round
  kDeadlineShed = 2,  ///< round's inference budget full; request shed to
                      ///< meet the planning deadline
};
std::string_view AdmissionVerdictToString(AdmissionVerdict verdict);

/// Admission control for the serving tier: per-tenant token-bucket rate
/// limits plus a per-round inference budget standing in for the planning
/// deadline (the round must finish before the next scaling decision, so
/// only `round_budget` forecasts may run; the rest degrade to the reactive
/// fallback — a tenant's round is *never* dropped, see fleet.h).
///
/// Deadline shedding is fair across rounds: tenants are ranked by a
/// priority rotated one position per round, so under persistent overload
/// every tenant gets fresh forecasts at the same long-run rate instead of
/// the highest-id tenants starving. Verdicts are a pure function of
/// (options, admission history), independent of thread count — the fleet's
/// determinism contract depends on this.
class AdmissionController {
 public:
  struct Options {
    /// Token-bucket capacity per tenant (burst allowance).
    double bucket_capacity = 4.0;
    /// Tokens refilled per round (steady-state fresh-forecast rate).
    double refill_per_round = 1.0;
    /// Tokens one admitted request costs.
    double cost_per_request = 1.0;
    /// Max requests admitted per round; 0 = unbounded (no deadline shed).
    size_t round_budget = 0;
    /// Metrics sink for serve.admission.* counters; null routes to
    /// obs::MetricsRegistry::Global(). Must outlive the controller.
    obs::MetricsRegistry* metrics = nullptr;
  };

  AdmissionController(Options options, size_t num_tenants);

  /// Advances to the next round: refills every bucket and rotates the
  /// shedding priority. Call once per planning round, before AdmitRound.
  void BeginRound();

  /// Decides admission for the tenants requesting a fresh forecast this
  /// round (ids must be < num_tenants, duplicates allowed — each entry is
  /// charged separately). Returns one verdict per entry, in input order.
  /// Exactly TokenScreen + SelectWithinBudget + Commit below.
  std::vector<AdmissionVerdict> AdmitRound(
      const std::vector<uint64_t>& tenants);

  // Two-phase admission for sharded serving (see fleet.cc). Token buckets
  // are per-tenant, so each shard screens and charges its own tenants on
  // its own controller; the deadline shed, however, ranks the round's
  // candidates *globally*, so the sharded fleet merges the per-shard
  // candidate lists and runs the (pure, static) selection once. Because
  // the three phases compose to exactly AdmitRound, S-shard admission is
  // bit-identical to the unsharded controller.

  /// Phase 1 — token screen, no state change: resizes `verdicts` to
  /// tenants.size() filled with kThrottled and appends to `candidates` the
  /// indices of entries whose bucket covers the request (duplicate entries
  /// for one tenant accrue cost within this call, exactly as AdmitRound
  /// charges them).
  void TokenScreen(const std::vector<uint64_t>& tenants,
                   std::vector<AdmissionVerdict>* verdicts,
                   std::vector<size_t>* candidates) const;

  /// Phase 2 — deadline shed, pure function of its arguments: ranks
  /// `candidates` (indices into `tenants`) by priority rotated one tenant
  /// per round, marks the entries beyond `round_budget` kDeadlineShed in
  /// `verdicts`, and truncates `candidates` to the budget. A budget of 0
  /// is unbounded (no-op). `num_tenants` must be the fleet-wide tenant
  /// count — the rotation period — not a shard's share.
  static void SelectWithinBudget(uint64_t round, size_t num_tenants,
                                 size_t round_budget,
                                 const std::vector<uint64_t>& tenants,
                                 std::vector<size_t>* candidates,
                                 std::vector<AdmissionVerdict>* verdicts);

  /// Phase 3 — commit: marks the surviving `candidates` kAdmitted, charges
  /// their buckets, and records metrics for every verdict in `verdicts`.
  void Commit(const std::vector<uint64_t>& tenants,
              const std::vector<size_t>& candidates,
              std::vector<AdmissionVerdict>* verdicts);

  /// Rounds begun so far — the rotation clock SelectWithinBudget takes.
  uint64_t round() const { return round_; }
  size_t num_tenants() const { return tokens_.size(); }

  /// Tokens currently available to a tenant (testing / introspection).
  double TokensAvailable(uint64_t tenant_id) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<double> tokens_;
  uint64_t round_ = 0;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* throttled_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
};

}  // namespace rpas::serve

#endif  // RPAS_SERVE_ADMISSION_H_
