#include "nn/trainer.h"

#include <limits>

#include "common/logging.h"

namespace rpas::nn {

TrainSummary TrainLoop(
    const TrainConfig& config, const std::vector<Parameter*>& params,
    const std::function<autodiff::Var(autodiff::Tape*, Rng*)>& loss_fn) {
  RPAS_CHECK(config.steps > 0);
  Rng rng(config.seed);
  Adam optimizer(Adam::Options{.lr = config.lr});

  TrainSummary summary;
  summary.best_loss = std::numeric_limits<double>::infinity();
  for (Parameter* p : params) {
    p->ZeroGrad();
  }

  for (int step = 0; step < config.steps; ++step) {
    autodiff::Tape tape;
    autodiff::Var loss = loss_fn(&tape, &rng);
    const double loss_value = loss.value()(0, 0);
    tape.Backward(loss);
    ClipGradNorm(params, config.clip_norm);
    optimizer.Step(params);

    summary.final_loss = loss_value;
    summary.best_loss = std::min(summary.best_loss, loss_value);
    ++summary.steps_run;
    if (config.log_every > 0 && (step + 1) % config.log_every == 0) {
      RPAS_LOG(kInfo) << "train step " << (step + 1) << "/" << config.steps
                      << " loss=" << loss_value;
    }
  }
  return summary;
}

}  // namespace rpas::nn
