#include "nn/trainer.h"

#include <limits>

#include "common/logging.h"
#include "obs/span.h"

namespace rpas::nn {

TrainSummary TrainLoop(
    const TrainConfig& config, const std::vector<Parameter*>& params,
    const std::function<autodiff::Var(autodiff::Tape*, Rng*)>& loss_fn) {
  RPAS_CHECK(config.steps > 0);
  Rng rng(config.seed);
  Adam optimizer(Adam::Options{.lr = config.lr});

  // One handle lookup per training run; the per-step updates below are a
  // few relaxed atomics (or a load + branch while metrics are disabled).
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(config.metrics);
  obs::Counter* steps_counter = metrics->GetCounter("nn.train.steps");
  obs::Counter* clip_counter = metrics->GetCounter("nn.train.clip_events");
  obs::Histogram* loss_hist = metrics->GetHistogram("nn.train.loss");
  obs::Histogram* grad_hist = metrics->GetHistogram("nn.train.grad_norm");
  obs::Span span("nn.train", config.steps);

  TrainSummary summary;
  summary.best_loss = std::numeric_limits<double>::infinity();
  if (config.record_loss) {
    summary.loss_history.reserve(static_cast<size_t>(config.steps));
  }
  for (Parameter* p : params) {
    p->ZeroGrad();
  }

  // One tape for the whole run: Reset() rewinds node slots and the matrix
  // arena, so steady-state steps reuse the first step's heap blocks.
  autodiff::Tape tape;
  for (int step = 0; step < config.steps; ++step) {
    tape.Reset();
    autodiff::Var loss = loss_fn(&tape, &rng);
    const double loss_value = loss.value()(0, 0);
    tape.Backward(loss);
    const double grad_norm = ClipGradNorm(params, config.clip_norm);
    optimizer.Step(params);

    summary.final_loss = loss_value;
    summary.best_loss = std::min(summary.best_loss, loss_value);
    summary.final_grad_norm = grad_norm;
    const bool clipped = grad_norm > config.clip_norm;
    if (clipped) {
      ++summary.clip_events;
    }
    ++summary.steps_run;
    if (config.record_loss) {
      summary.loss_history.push_back(loss_value);
    }
    if (step == 0) {
      summary.arena_allocs_after_warmup = tape.ArenaStats().heap_allocs;
    }
    summary.arena_allocs_final = tape.ArenaStats().heap_allocs;

    steps_counter->Increment();
    loss_hist->Observe(loss_value);
    grad_hist->Observe(grad_norm);
    if (clipped) {
      clip_counter->Increment();
    }

    // Progress logging reads the same per-step values the metrics hooks
    // record, so the two reporting paths cannot disagree.
    if (config.log_every > 0 && (step + 1) % config.log_every == 0) {
      RPAS_LOG(kInfo) << "train step " << (step + 1) << "/" << config.steps
                      << " loss=" << summary.final_loss
                      << " grad_norm=" << summary.final_grad_norm
                      << " clipped=" << summary.clip_events;
    }
  }
  return summary;
}

}  // namespace rpas::nn
