#include "nn/init.h"

#include <cmath>

namespace rpas::nn {

tensor::Matrix XavierUniform(size_t rows, size_t cols, Rng* rng) {
  tensor::Matrix m(rows, cols);
  const double a =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = rng->Uniform(-a, a);
  }
  return m;
}

tensor::Matrix Zeros(size_t rows, size_t cols) {
  return tensor::Matrix(rows, cols);
}

tensor::Matrix Constant(size_t rows, size_t cols, double value) {
  return tensor::Matrix(rows, cols, value);
}

}  // namespace rpas::nn
