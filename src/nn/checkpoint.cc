#include "nn/checkpoint.h"

#include <cinttypes>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace rpas::nn {

namespace {
constexpr char kMagic[] = "RPASCKPT1";
}

Status SaveParameters(const std::string& path, const std::string& signature,
                      const std::vector<autodiff::Parameter*>& params) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << kMagic << "\n" << signature << "\n" << params.size() << "\n";
  out.precision(17);
  for (const autodiff::Parameter* p : params) {
    out << p->value.rows() << " " << p->value.cols() << "\n";
    for (size_t i = 0; i < p->value.size(); ++i) {
      if (i > 0) {
        out << " ";
      }
      out << p->value[i];
    }
    out << "\n";
  }
  out.flush();
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Status LoadParameters(const std::string& path, const std::string& signature,
                      const std::vector<autodiff::Parameter*>& params) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an RPAS checkpoint");
  }
  if (!std::getline(in, line) || line != signature) {
    return Status::InvalidArgument(
        "checkpoint signature mismatch: file has '" + line +
        "', model expects '" + signature + "'");
  }
  size_t count = 0;
  if (!(in >> count) || count != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint holds %zu tensors, model has %zu", count, params.size()));
  }
  for (size_t idx = 0; idx < params.size(); ++idx) {
    size_t rows = 0;
    size_t cols = 0;
    if (!(in >> rows >> cols)) {
      return Status::InvalidArgument("truncated checkpoint header");
    }
    autodiff::Parameter* p = params[idx];
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument(StrFormat(
          "tensor %zu shape mismatch: file %zux%zu, model %zux%zu", idx,
          rows, cols, p->value.rows(), p->value.cols()));
    }
    for (size_t i = 0; i < p->value.size(); ++i) {
      if (!(in >> p->value[i])) {
        return Status::InvalidArgument("truncated checkpoint data");
      }
    }
    p->ZeroGrad();
  }
  return Status::OK();
}

}  // namespace rpas::nn
