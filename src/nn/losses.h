#ifndef RPAS_NN_LOSSES_H_
#define RPAS_NN_LOSSES_H_

#include <vector>

#include "autodiff/tape.h"

namespace rpas::nn {

using autodiff::Tape;
using autodiff::Var;
using tensor::Matrix;

/// Mean squared error between prediction and target (same shape); 1x1.
Var MseLoss(Tape* tape, Var pred, Var target);

/// Gaussian negative log-likelihood, averaged over elements.
/// `mu` and `sigma` have the same shape as `target`; sigma must already be
/// positive (apply Softplus upstream). (Paper §III-B: NLL "enables direct
/// computation of the likelihood of a given point".)
Var GaussianNllLoss(Tape* tape, Var mu, Var sigma, Var target);

/// Location-scale Student-t negative log-likelihood with fixed degrees of
/// freedom `dof`, averaged over elements. The paper selects Student-t for
/// the DeepAR head because its heavier tails absorb workload outliers.
/// Built from tape primitives: NLL = const(dof) + log(sigma)
///   + (dof+1)/2 * log(1 + z^2/dof), z = (target-mu)/sigma.
Var StudentTNllLoss(Tape* tape, Var mu, Var sigma, Var target, double dof);

/// Joint pinball loss over a pre-specified quantile grid (paper Eq. 1-2).
/// `pred` is N x Q (one column per level in `taus`); `target` is N x 1.
/// Returns the loss summed over quantiles, averaged over rows.
Var QuantileGridLoss(Tape* tape, Var pred, Var target,
                     const std::vector<double>& taus);

}  // namespace rpas::nn

#endif  // RPAS_NN_LOSSES_H_
