#ifndef RPAS_NN_QCHECKPOINT_H_
#define RPAS_NN_QCHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "autodiff/tape.h"
#include "common/result.h"
#include "tensor/matrix.h"
#include "tensor/quant.h"

namespace rpas::nn {

/// rpasq.v1 — the quantized, memory-mappable checkpoint format.
///
/// Layout (every multi-byte lane little-endian; see DESIGN.md §11 for the
/// full invariant list):
///
///   [0..8)    magic "RPASQ1\0\0"
///   [8..12)   u32 format version (== 1)
///   [12..16)  u32 flags (== 0; loaders reject unknown flags)
///   [16..20)  u32 tensor count
///   [20..24)  u32 header_bytes — total header region length, 64-aligned;
///             the first payload starts here
///   [24..28)  u32 signature length, then the signature bytes
///   per tensor, in order:
///     u16 name length, name bytes
///     u8 dtype (tensor::DType code), u8 reserved (== 0)
///     u64 rows, u64 cols
///     u64 payload offset (absolute, 64-aligned)
///     u64 payload bytes  (== tensor::PayloadBytes(dtype, rows*cols))
///     u32 payload crc32
///   zero padding, then u32 header crc32 as the final 4 bytes of the
///   header region (scope: bytes [0, header_bytes-4))
///   payloads, each 64-aligned, inside [header_bytes, file size)
///
/// Forward-compat rules: readers reject any unknown version, non-zero
/// flag bit, or dtype code — additions bump the version or claim a flag
/// bit, so an old reader can never silently misparse a newer file.
inline constexpr uint8_t kQckptMagic[8] = {'R', 'P', 'A', 'S',
                                           'Q', '1', 0, 0};
inline constexpr uint32_t kQckptVersion = 1;
inline constexpr size_t kQckptAlign = 64;

/// One tensor to serialize.
struct QTensorSpec {
  std::string name;
  tensor::DType dtype = tensor::DType::kF64;
  const tensor::Matrix* data = nullptr;  ///< fp64 source; not owned
};

/// Serializes `tensors` to `path` (temp file + atomic rename). Encoding is
/// deterministic: identical inputs produce identical bytes, which the
/// golden-file tests rely on.
Status WriteQuantizedCheckpoint(const std::string& path,
                                const std::string& signature,
                                const std::vector<QTensorSpec>& tensors);

/// Storage-dtype policy shared by the converter and SaveQuantized: 2-d
/// weight matrices (both dims >= 2) are stored at the requested target
/// dtype; vectors, scalars, and tiny tensors (biases, the MLP scaler) stay
/// exact fp64 — they are a rounding error of the byte budget, and keeping
/// them exact means the measured wQL delta isolates weight quantization.
tensor::DType StorageDType(const tensor::Matrix& m, tensor::DType target);

/// Writes a model's parameters (Params() order, names "t0", "t1", ...)
/// as an rpasq.v1 checkpoint at the target dtype under StorageDType().
Status SaveQuantized(const std::string& path, const std::string& signature,
                     const std::vector<autodiff::Parameter*>& params,
                     tensor::DType target);

/// Generic reader for the *text* checkpoint format (nn/checkpoint.h),
/// model-free: the signature plus every tensor in file order. Used by the
/// rpas_quantize converter, which re-encodes without knowing the
/// architecture.
struct ParsedTextCheckpoint {
  std::string signature;
  std::vector<tensor::Matrix> tensors;
};
Result<ParsedTextCheckpoint> ReadTextCheckpoint(const std::string& path);

/// One-call converter: text checkpoint -> rpasq.v1 at `target` dtype.
Status QuantizeCheckpointFile(const std::string& in_path,
                              const std::string& out_path,
                              tensor::DType target);

/// True when the file at `path` starts with the rpasq magic (cheap sniff
/// used by serve::ModelRegistry to pick the mmap load path).
bool IsQuantizedCheckpointFile(const std::string& path);

/// A named tensor inside a mapped checkpoint.
struct QTensor {
  std::string name;
  tensor::QTensorView view;
};

/// Decodes checkpoint tensor `t` into the fp64 parameter (the small-tensor
/// load path: biases, layer norms, the MLP scaler). The parameter's shape
/// must already match; its gradient is zeroed. InvalidArgument on shape or
/// payload mismatch — the parameter is untouched on error.
Status AssignDequantized(const QTensor& t, autodiff::Parameter* param);

/// A validated, memory-mapped rpasq.v1 checkpoint.
///
/// Map() treats the file as untrusted input: every header field is
/// bounds-checked before use, payload offsets/lengths are checked against
/// the real file size, and the header and every payload must pass their
/// crc32 before a single view is handed out. Any violation returns a typed
/// Status (InvalidArgument for malformed bytes, IoError for filesystem
/// failures) and constructs nothing — there is no partially-valid
/// checkpoint object.
///
/// Views returned by tensor()/Find() point straight into the mapping;
/// holders must keep the shared_ptr alive for as long as they dereference
/// a view (forecasters retain it next to their layers). On platforms
/// without mmap the file is read into a heap buffer with identical
/// semantics (heap_bytes() vs mapped_bytes() tells the two apart).
class QuantizedCheckpoint {
 public:
  static Result<std::shared_ptr<const QuantizedCheckpoint>> Map(
      const std::string& path);

  QuantizedCheckpoint(const QuantizedCheckpoint&) = delete;
  QuantizedCheckpoint& operator=(const QuantizedCheckpoint&) = delete;
  ~QuantizedCheckpoint();

  const std::string& signature() const { return signature_; }
  size_t num_tensors() const { return tensors_.size(); }
  const QTensor& tensor(size_t i) const { return tensors_[i]; }
  const QTensor* Find(std::string_view name) const;

  /// Whole-file byte count (the registry's cache accounting unit).
  size_t file_bytes() const { return file_bytes_; }
  /// file_bytes() when served from a real mmap, else 0.
  size_t mapped_bytes() const { return mapped_ != nullptr ? file_bytes_ : 0; }
  /// Heap bytes of the no-mmap fallback buffer, else 0.
  size_t heap_bytes() const { return mapped_ != nullptr ? 0 : buffer_.size(); }
  bool is_mapped() const { return mapped_ != nullptr; }

 private:
  QuantizedCheckpoint() = default;

  /// Validates the header + payload table + checksums over `data_`
  /// (file_bytes_ long) and fills signature_/tensors_.
  Status Validate(const std::string& path);

  const uint8_t* data_ = nullptr;
  size_t file_bytes_ = 0;
  void* mapped_ = nullptr;          ///< munmap target (null = heap fallback)
  std::vector<uint8_t> buffer_;     ///< no-mmap fallback storage
  std::string signature_;
  std::vector<QTensor> tensors_;
};

}  // namespace rpas::nn

#endif  // RPAS_NN_QCHECKPOINT_H_
