#include "nn/losses.h"

#include <cmath>

#include "common/logging.h"

namespace rpas::nn {

Var MseLoss(Tape* tape, Var pred, Var target) {
  return tape->Mean(tape->Square(tape->Sub(pred, target)));
}

Var GaussianNllLoss(Tape* tape, Var mu, Var sigma, Var target) {
  // 0.5*log(2*pi) + log(sigma) + (y-mu)^2 / (2*sigma^2)
  Var z = tape->Div(tape->Sub(target, mu), sigma);
  Var nll = tape->Add(tape->Log(sigma), tape->Scale(tape->Square(z), 0.5));
  nll = tape->AddScalar(nll, 0.5 * std::log(2.0 * M_PI));
  return tape->Mean(nll);
}

Var StudentTNllLoss(Tape* tape, Var mu, Var sigma, Var target, double dof) {
  RPAS_CHECK(dof > 0.0) << "StudentT dof must be positive";
  const double constant = -std::lgamma((dof + 1.0) / 2.0) +
                          std::lgamma(dof / 2.0) +
                          0.5 * std::log(dof * M_PI);
  Var z = tape->Div(tape->Sub(target, mu), sigma);
  // log(1 + z^2/dof)
  Var log_term =
      tape->Log(tape->AddScalar(tape->Scale(tape->Square(z), 1.0 / dof), 1.0));
  Var nll = tape->Add(tape->Log(sigma),
                      tape->Scale(log_term, (dof + 1.0) / 2.0));
  nll = tape->AddScalar(nll, constant);
  return tape->Mean(nll);
}

Var QuantileGridLoss(Tape* tape, Var pred, Var target,
                     const std::vector<double>& taus) {
  RPAS_CHECK(pred.cols() == taus.size())
      << "prediction columns must match quantile grid";
  RPAS_CHECK(target.cols() == 1 && target.rows() == pred.rows())
      << "target must be N x 1 aligned with pred";

  // Tile the target across Q columns (constant — no gradient flows to it).
  // Arena-backed Input leaves keep the per-step loss build allocation-free.
  const Matrix& tv = target.value();
  Var y = tape->Input(tv.rows(), taus.size());
  Matrix& tiled = *tape->MutableValue(y);
  for (size_t r = 0; r < tv.rows(); ++r) {
    for (size_t q = 0; q < taus.size(); ++q) {
      tiled(r, q) = tv(r, 0);
    }
  }

  // rho_tau(y, yhat) = max(tau * (y - yhat), (tau - 1) * (y - yhat)).
  Var diff = tape->Sub(y, pred);
  Var tau_row = tape->Input(1, taus.size());
  Var tau_m1_row = tape->Input(1, taus.size());
  for (size_t q = 0; q < taus.size(); ++q) {
    (*tape->MutableValue(tau_row))(0, q) = taus[q];
    (*tape->MutableValue(tau_m1_row))(0, q) = taus[q] - 1.0;
  }
  Var upper = tape->MulRowBroadcast(diff, tau_row);
  Var lower = tape->MulRowBroadcast(diff, tau_m1_row);
  Var pinball = tape->Max(upper, lower);
  // Sum over quantiles, average over rows.
  return tape->Scale(tape->Sum(pinball),
                     1.0 / static_cast<double>(pred.rows()));
}

}  // namespace rpas::nn
