#ifndef RPAS_NN_OPTIMIZER_H_
#define RPAS_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "autodiff/tape.h"

namespace rpas::nn {

using autodiff::Parameter;
using tensor::Matrix;

/// Clips the global L2 norm of the given parameter gradients to
/// `max_norm` (> 0); returns the pre-clip norm.
double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm);

/// Adam optimizer (Kingma & Ba). Moment buffers are keyed by Parameter
/// pointer, so one optimizer instance can drive a whole model.
class Adam {
 public:
  struct Options {
    double lr = 1e-3;  ///< paper fixes 1e-3 for all models (§IV-A)
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  Adam();
  explicit Adam(Options options);

  /// Applies one update using each parameter's current `grad`, then zeroes
  /// the gradients.
  void Step(const std::vector<Parameter*>& params);

  /// Learning-rate accessor (for schedules).
  double lr() const { return options_.lr; }
  void set_lr(double lr) { options_.lr = lr; }

 private:
  struct Moments {
    Matrix m;
    Matrix v;
  };
  Options options_;
  int64_t t_ = 0;
  std::unordered_map<Parameter*, Moments> moments_;
};

/// Plain SGD with optional momentum; used in tests as a reference
/// optimizer.
class Sgd {
 public:
  explicit Sgd(double lr, double momentum = 0.0);

  void Step(const std::vector<Parameter*>& params);

 private:
  double lr_;
  double momentum_;
  std::unordered_map<Parameter*, Matrix> velocity_;
};

}  // namespace rpas::nn

#endif  // RPAS_NN_OPTIMIZER_H_
