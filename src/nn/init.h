#ifndef RPAS_NN_INIT_H_
#define RPAS_NN_INIT_H_

#include "common/rng.h"
#include "tensor/matrix.h"

namespace rpas::nn {

/// Xavier/Glorot uniform initialization: U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)).
tensor::Matrix XavierUniform(size_t rows, size_t cols, Rng* rng);

/// Zero-initialized matrix (biases).
tensor::Matrix Zeros(size_t rows, size_t cols);

/// Constant-filled matrix (e.g., LSTM forget-gate bias of 1).
tensor::Matrix Constant(size_t rows, size_t cols, double value);

}  // namespace rpas::nn

#endif  // RPAS_NN_INIT_H_
