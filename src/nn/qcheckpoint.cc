#include "nn/qcheckpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/crc32.h"
#include "common/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define RPAS_QCKPT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define RPAS_QCKPT_HAVE_MMAP 0
#endif

namespace rpas::nn {
namespace {

using tensor::DType;
using tensor::Matrix;
using tensor::PayloadBytes;

// Hard sanity caps applied to both writer and loader. They bound every
// allocation the loader makes from untrusted fields long before any
// multiplication can overflow.
constexpr size_t kFixedHeaderBytes = 28;
constexpr size_t kMaxTensors = 4096;
constexpr size_t kMaxNameBytes = 256;
constexpr size_t kMaxSignatureBytes = 4096;
constexpr size_t kMaxDim = size_t{1} << 24;
constexpr size_t kMaxElements = size_t{1} << 28;

size_t AlignUp(size_t v) {
  return (v + kQckptAlign - 1) / kQckptAlign * kQckptAlign;
}

/// Serialized table-entry size for a given name length.
size_t EntryBytes(size_t name_len) {
  return 2 + name_len + 1 + 1 + 4 * 8 + 4;
}

void PutU16Le(uint16_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v & 0xFFu);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void PutU32Le(uint32_t v, uint8_t* p) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xFFu);
  }
}

void PutU64Le(uint64_t v, uint8_t* p) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xFFu);
  }
}

/// Bounds-checked little-endian cursor over untrusted bytes. Every Read*
/// returns false instead of reading past `len` — the loader turns any
/// failed read into a typed "truncated" error.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;

  bool ReadBytes(void* out, size_t n) {
    if (n > len - pos) {  // pos <= len always holds, so no underflow
      return false;
    }
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  bool ReadU16(uint16_t* out) {
    uint8_t b[2];
    if (!ReadBytes(b, 2)) {
      return false;
    }
    *out = static_cast<uint16_t>(b[0] | (b[1] << 8));
    return true;
  }
  bool ReadU32(uint32_t* out) {
    uint8_t b[4];
    if (!ReadBytes(b, 4)) {
      return false;
    }
    *out = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
    return true;
  }
  bool ReadU64(uint64_t* out) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) {
      return false;
    }
    *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
};

Status Malformed(const std::string& path, const std::string& why) {
  return Status::InvalidArgument(path + ": malformed rpasq checkpoint: " +
                                 why);
}

}  // namespace

tensor::DType StorageDType(const Matrix& m, DType target) {
  if (target == DType::kF64 || m.rows() < 2 || m.cols() < 2) {
    return DType::kF64;
  }
  return target;
}

Status WriteQuantizedCheckpoint(const std::string& path,
                                const std::string& signature,
                                const std::vector<QTensorSpec>& tensors) {
  if (signature.empty() || signature.size() > kMaxSignatureBytes) {
    return Status::InvalidArgument(
        "rpasq: signature must be non-empty and at most 4096 bytes");
  }
  if (tensors.empty() || tensors.size() > kMaxTensors) {
    return Status::InvalidArgument(StrFormat(
        "rpasq: tensor count %zu outside [1, %zu]", tensors.size(),
        kMaxTensors));
  }
  size_t table_bytes = 0;
  for (const QTensorSpec& t : tensors) {
    if (t.name.empty() || t.name.size() > kMaxNameBytes) {
      return Status::InvalidArgument(
          "rpasq: tensor name must be non-empty and at most 256 bytes");
    }
    if (t.data == nullptr || t.data->empty()) {
      return Status::InvalidArgument("rpasq: tensor '" + t.name +
                                     "' has no data");
    }
    if (t.data->rows() > kMaxDim || t.data->cols() > kMaxDim ||
        t.data->size() > kMaxElements) {
      return Status::InvalidArgument("rpasq: tensor '" + t.name +
                                     "' exceeds the format's size caps");
    }
    table_bytes += EntryBytes(t.name.size());
  }

  const size_t header_bytes =
      AlignUp(kFixedHeaderBytes + signature.size() + table_bytes + 4);
  size_t cursor = header_bytes;
  std::vector<size_t> offsets(tensors.size());
  for (size_t i = 0; i < tensors.size(); ++i) {
    offsets[i] = cursor;
    const size_t payload =
        PayloadBytes(tensors[i].dtype, tensors[i].data->size());
    cursor = (i + 1 < tensors.size()) ? AlignUp(cursor + payload)
                                      : cursor + payload;
  }
  std::vector<uint8_t> out(cursor, 0);

  // Fixed fields + signature.
  std::memcpy(out.data(), kQckptMagic, sizeof(kQckptMagic));
  PutU32Le(kQckptVersion, out.data() + 8);
  PutU32Le(0, out.data() + 12);  // flags
  PutU32Le(static_cast<uint32_t>(tensors.size()), out.data() + 16);
  PutU32Le(static_cast<uint32_t>(header_bytes), out.data() + 20);
  PutU32Le(static_cast<uint32_t>(signature.size()), out.data() + 24);
  std::memcpy(out.data() + kFixedHeaderBytes, signature.data(),
              signature.size());

  // Tensor table + payloads.
  size_t table_pos = kFixedHeaderBytes + signature.size();
  for (size_t i = 0; i < tensors.size(); ++i) {
    const QTensorSpec& t = tensors[i];
    const size_t count = t.data->size();
    const size_t payload = PayloadBytes(t.dtype, count);
    uint8_t* e = out.data() + table_pos;
    PutU16Le(static_cast<uint16_t>(t.name.size()), e);
    std::memcpy(e + 2, t.name.data(), t.name.size());
    e += 2 + t.name.size();
    e[0] = static_cast<uint8_t>(t.dtype);
    e[1] = 0;  // reserved
    PutU64Le(t.data->rows(), e + 2);
    PutU64Le(t.data->cols(), e + 10);
    PutU64Le(offsets[i], e + 18);
    PutU64Le(payload, e + 26);
    tensor::EncodePayload(t.dtype, t.data->data(), count,
                          out.data() + offsets[i]);
    PutU32Le(Crc32(out.data() + offsets[i], payload), e + 34);
    table_pos += EntryBytes(t.name.size());
  }

  // Header crc is the final 4 bytes of the header region; the zero padding
  // before it is part of the checksummed scope.
  PutU32Le(Crc32(out.data(), header_bytes - 4),
           out.data() + header_bytes - 4);

  // Temp-file + atomic rename, so a concurrent reader (or a crashed
  // writer) can never observe a half-written checkpoint.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(
#if RPAS_QCKPT_HAVE_MMAP
                           ::getpid()
#else
                           0
#endif
                           ));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      return Status::IoError("rpasq: cannot open '" + tmp + "' for writing");
    }
    f.write(reinterpret_cast<const char*>(out.data()),
            static_cast<std::streamsize>(out.size()));
    f.flush();
    if (!f) {
      return Status::IoError("rpasq: write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rpasq: rename '" + tmp + "' -> '" + path +
                           "' failed");
  }
  return Status::OK();
}

Status SaveQuantized(const std::string& path, const std::string& signature,
                     const std::vector<autodiff::Parameter*>& params,
                     DType target) {
  std::vector<QTensorSpec> specs;
  specs.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    QTensorSpec spec;
    spec.name = StrFormat("t%zu", i);
    spec.dtype = StorageDType(params[i]->value, target);
    spec.data = &params[i]->value;
    specs.push_back(std::move(spec));
  }
  return WriteQuantizedCheckpoint(path, signature, specs);
}

Result<ParsedTextCheckpoint> ReadTextCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line) || line != "RPASCKPT1") {
    return Status::InvalidArgument("'" + path +
                                   "' is not an RPAS text checkpoint");
  }
  ParsedTextCheckpoint parsed;
  if (!std::getline(in, parsed.signature) || parsed.signature.empty()) {
    return Status::InvalidArgument("'" + path +
                                   "' has no architecture signature");
  }
  size_t count = 0;
  if (!(in >> count) || count == 0 || count > kMaxTensors) {
    return Status::InvalidArgument("'" + path +
                                   "' has a missing or absurd tensor count");
  }
  parsed.tensors.reserve(count);
  for (size_t idx = 0; idx < count; ++idx) {
    size_t rows = 0;
    size_t cols = 0;
    if (!(in >> rows >> cols) || rows == 0 || cols == 0 || rows > kMaxDim ||
        cols > kMaxDim || rows * cols > kMaxElements) {
      return Status::InvalidArgument(
          StrFormat("'%s': tensor %zu has a truncated or absurd shape",
                    path.c_str(), idx));
    }
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i) {
      if (!(in >> m[i])) {
        return Status::InvalidArgument(StrFormat(
            "'%s': tensor %zu data is truncated", path.c_str(), idx));
      }
    }
    parsed.tensors.push_back(std::move(m));
  }
  return parsed;
}

Status QuantizeCheckpointFile(const std::string& in_path,
                              const std::string& out_path, DType target) {
  RPAS_ASSIGN_OR_RETURN(ParsedTextCheckpoint parsed,
                        ReadTextCheckpoint(in_path));
  std::vector<QTensorSpec> specs;
  specs.reserve(parsed.tensors.size());
  for (size_t i = 0; i < parsed.tensors.size(); ++i) {
    QTensorSpec spec;
    spec.name = StrFormat("t%zu", i);
    spec.dtype = StorageDType(parsed.tensors[i], target);
    spec.data = &parsed.tensors[i];
    specs.push_back(std::move(spec));
  }
  return WriteQuantizedCheckpoint(out_path, parsed.signature, specs);
}

bool IsQuantizedCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  uint8_t magic[sizeof(kQckptMagic)] = {};
  in.read(reinterpret_cast<char*>(magic), sizeof(magic));
  return in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
         std::memcmp(magic, kQckptMagic, sizeof(magic)) == 0;
}

Status AssignDequantized(const QTensor& t, autodiff::Parameter* param) {
  if (t.view.rows != param->value.rows() ||
      t.view.cols != param->value.cols()) {
    return Status::InvalidArgument(
        StrFormat("tensor '%s' is %zu x %zu, parameter expects %zu x %zu",
                  t.name.c_str(), t.view.rows, t.view.cols,
                  param->value.rows(), param->value.cols()));
  }
  Matrix decoded;
  RPAS_RETURN_IF_ERROR(tensor::DequantizeToMatrix(t.view, &decoded));
  param->value = std::move(decoded);
  param->ZeroGrad();
  return Status::OK();
}

QuantizedCheckpoint::~QuantizedCheckpoint() {
#if RPAS_QCKPT_HAVE_MMAP
  if (mapped_ != nullptr) {
    ::munmap(mapped_, file_bytes_);
  }
#endif
}

const QTensor* QuantizedCheckpoint::Find(std::string_view name) const {
  for (const QTensor& t : tensors_) {
    if (t.name == name) {
      return &t;
    }
  }
  return nullptr;
}

Result<std::shared_ptr<const QuantizedCheckpoint>> QuantizedCheckpoint::Map(
    const std::string& path) {
  std::shared_ptr<QuantizedCheckpoint> ckpt(new QuantizedCheckpoint());
#if RPAS_QCKPT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("rpasq: cannot open '" + path + "' for mapping");
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("rpasq: cannot stat '" + path + "'");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Malformed(path, "file is empty");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IoError("rpasq: mmap of '" + path + "' failed");
  }
  ckpt->mapped_ = map;
  ckpt->data_ = static_cast<const uint8_t*>(map);
  ckpt->file_bytes_ = size;
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("rpasq: cannot open '" + path + "' for reading");
  }
  const std::streamoff size = in.tellg();
  if (size <= 0) {
    return Malformed(path, "file is empty");
  }
  ckpt->buffer_.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(ckpt->buffer_.data()), size);
  if (!in) {
    return Status::IoError("rpasq: read of '" + path + "' failed");
  }
  ckpt->data_ = ckpt->buffer_.data();
  ckpt->file_bytes_ = ckpt->buffer_.size();
#endif
  RPAS_RETURN_IF_ERROR(ckpt->Validate(path));
  return std::shared_ptr<const QuantizedCheckpoint>(std::move(ckpt));
}

Status QuantizedCheckpoint::Validate(const std::string& path) {
  // --- fixed header fields -------------------------------------------------
  Reader r{data_, file_bytes_};
  uint8_t magic[sizeof(kQckptMagic)];
  uint32_t version = 0;
  uint32_t flags = 0;
  uint32_t num_tensors = 0;
  uint32_t header_bytes32 = 0;
  uint32_t signature_len = 0;
  if (!r.ReadBytes(magic, sizeof(magic)) || !r.ReadU32(&version) ||
      !r.ReadU32(&flags) || !r.ReadU32(&num_tensors) ||
      !r.ReadU32(&header_bytes32) || !r.ReadU32(&signature_len)) {
    return Malformed(path, "truncated fixed header");
  }
  if (std::memcmp(magic, kQckptMagic, sizeof(kQckptMagic)) != 0) {
    return Malformed(path, "bad magic (not an rpasq file)");
  }
  if (version != kQckptVersion) {
    return Malformed(
        path, StrFormat("unsupported format version %u (reader supports %u)",
                        version, kQckptVersion));
  }
  if (flags != 0) {
    return Malformed(path,
                     StrFormat("unknown flag bits 0x%x (reader knows none)",
                               flags));
  }
  if (num_tensors == 0 || num_tensors > kMaxTensors) {
    return Malformed(path, StrFormat("tensor count %u outside [1, %zu]",
                                     num_tensors, kMaxTensors));
  }
  const size_t header_bytes = header_bytes32;
  if (header_bytes % kQckptAlign != 0 || header_bytes < kQckptAlign ||
      header_bytes > file_bytes_) {
    return Malformed(path, StrFormat("header region of %zu bytes is "
                                     "misaligned or exceeds the %zu-byte "
                                     "file",
                                     header_bytes, file_bytes_));
  }
  if (signature_len == 0 || signature_len > kMaxSignatureBytes) {
    return Malformed(path, "signature length outside [1, 4096]");
  }

  // --- header checksum (scope: everything before the final 4 bytes) -------
  const uint32_t stored_header_crc =
      static_cast<uint32_t>(data_[header_bytes - 4]) |
      (static_cast<uint32_t>(data_[header_bytes - 3]) << 8) |
      (static_cast<uint32_t>(data_[header_bytes - 2]) << 16) |
      (static_cast<uint32_t>(data_[header_bytes - 1]) << 24);
  if (Crc32(data_, header_bytes - 4) != stored_header_crc) {
    return Malformed(path, "header checksum mismatch (corrupt header)");
  }

  // --- signature + tensor table, bounded by the checksum trailer ----------
  const size_t table_end = header_bytes - 4;
  Reader h{data_, table_end, kFixedHeaderBytes};
  std::string signature(signature_len, '\0');
  if (!h.ReadBytes(signature.data(), signature_len)) {
    return Malformed(path, "signature overruns the header region");
  }
  std::vector<QTensor> tensors;
  tensors.reserve(num_tensors);
  for (uint32_t i = 0; i < num_tensors; ++i) {
    uint16_t name_len = 0;
    if (!h.ReadU16(&name_len) || name_len == 0 || name_len > kMaxNameBytes) {
      return Malformed(path,
                       StrFormat("tensor %u has a missing or oversized name",
                                 i));
    }
    std::string name(name_len, '\0');
    uint8_t dtype_code = 0;
    uint8_t reserved = 0;
    uint64_t rows = 0;
    uint64_t cols = 0;
    uint64_t offset = 0;
    uint64_t payload_bytes = 0;
    uint32_t payload_crc = 0;
    if (!h.ReadBytes(name.data(), name_len) ||
        !h.ReadBytes(&dtype_code, 1) || !h.ReadBytes(&reserved, 1) ||
        !h.ReadU64(&rows) || !h.ReadU64(&cols) || !h.ReadU64(&offset) ||
        !h.ReadU64(&payload_bytes) || !h.ReadU32(&payload_crc)) {
      return Malformed(path,
                       StrFormat("tensor table truncated at entry %u", i));
    }
    if (!tensor::DTypeValid(dtype_code) || reserved != 0) {
      return Malformed(
          path, StrFormat("tensor '%s' has unknown dtype code %u",
                          name.c_str(), dtype_code));
    }
    const DType dtype = static_cast<DType>(dtype_code);
    if (rows == 0 || cols == 0 || rows > kMaxDim || cols > kMaxDim ||
        rows * cols > kMaxElements) {
      return Malformed(path,
                       StrFormat("tensor '%s' shape %llu x %llu is empty or "
                                 "exceeds the format caps",
                                 name.c_str(),
                                 static_cast<unsigned long long>(rows),
                                 static_cast<unsigned long long>(cols)));
    }
    const size_t count = static_cast<size_t>(rows * cols);
    if (payload_bytes != PayloadBytes(dtype, count)) {
      return Malformed(
          path,
          StrFormat("tensor '%s' payload is %llu bytes but %zu x %zu %s "
                    "requires %zu",
                    name.c_str(),
                    static_cast<unsigned long long>(payload_bytes),
                    static_cast<size_t>(rows), static_cast<size_t>(cols),
                    tensor::DTypeName(dtype), PayloadBytes(dtype, count)));
    }
    if (offset % kQckptAlign != 0 || offset < header_bytes ||
        offset > file_bytes_ || payload_bytes > file_bytes_ - offset) {
      return Malformed(
          path, StrFormat("tensor '%s' payload [%llu, +%llu) is misaligned "
                          "or out of the file's bounds",
                          name.c_str(),
                          static_cast<unsigned long long>(offset),
                          static_cast<unsigned long long>(payload_bytes)));
    }
    if (Crc32(data_ + offset, static_cast<size_t>(payload_bytes)) !=
        payload_crc) {
      return Malformed(path, StrFormat("tensor '%s' payload checksum "
                                       "mismatch (corrupt or bit-flipped "
                                       "data)",
                                       name.c_str()));
    }
    QTensor t;
    t.name = std::move(name);
    t.view.dtype = dtype;
    t.view.rows = static_cast<size_t>(rows);
    t.view.cols = static_cast<size_t>(cols);
    t.view.payload = data_ + offset;
    t.view.payload_bytes = static_cast<size_t>(payload_bytes);
    tensors.push_back(std::move(t));
  }
  // The gap between the last table entry and the checksum trailer must be
  // zero padding — anything else is smuggled bytes the checksum scope
  // would otherwise legitimize.
  for (size_t pos = h.pos; pos < table_end; ++pos) {
    if (data_[pos] != 0) {
      return Malformed(path, "non-zero bytes in the header padding");
    }
  }
  signature_ = std::move(signature);
  tensors_ = std::move(tensors);
  return Status::OK();
}

}  // namespace rpas::nn
