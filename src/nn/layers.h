#ifndef RPAS_NN_LAYERS_H_
#define RPAS_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "common/result.h"
#include "common/rng.h"
#include "tensor/quant.h"

namespace rpas::nn {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;
using tensor::Matrix;

/// Base for parameterized building blocks. A Module exposes its Parameters
/// so optimizers can iterate them; Forward methods build tape graphs during
/// training, and Apply methods run tape-free inference.
class Module {
 public:
  virtual ~Module() = default;

  /// Pointers to every trainable parameter (including sub-modules').
  virtual std::vector<Parameter*> Params() = 0;

  /// Total scalar parameter count.
  size_t NumParams();

  /// Zeroes every parameter gradient.
  void ZeroGrads();
};

/// Fully-connected layer y = x W + b with optional activation.
class Dense final : public Module {
 public:
  enum class Activation { kNone, kRelu, kTanh, kSigmoid, kSoftplus };

  Dense(size_t in_dim, size_t out_dim, Activation act, Rng* rng);

  /// Training path: x is B x in, result B x out. CHECK-fails on a layer
  /// serving quantized weights — quantized models are inference-only.
  Var Forward(Tape* tape, Var x);
  /// Inference path (no tape, no gradients). With quantized weights the
  /// GEMM runs kernels::GemmQuant against the stored payload
  /// (dequant-on-the-fly); bias add and activation are unchanged, so the
  /// batched-vs-unbatched bit-identity contract holds within a dtype.
  Matrix Apply(const Matrix& x) const;

  /// Serving-only weight replacement: Apply() multiplies against the
  /// serialized rpasq payload view `w` (in x out) instead of the fp64
  /// parameter. The bytes behind the view are NOT owned — the caller (a
  /// forecaster holding its mapped checkpoint) must keep them alive for
  /// this layer's lifetime. InvalidArgument on a shape/payload mismatch.
  Status SetQuantizedWeights(const tensor::QTensorView& w);
  bool has_quantized_weights() const { return qw_.valid(); }

  std::vector<Parameter*> Params() override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  Activation act_;
  Parameter w_;
  Parameter b_;
  tensor::QTensorView qw_;  ///< serving-only quantized weight view
};

/// Single LSTM cell (batched over rows). State tensors are B x hidden.
/// Gate order in the fused weight matrices: input, forget, cell, output.
/// Forget-gate bias initialized to 1 (standard recipe).
class LstmCell final : public Module {
 public:
  LstmCell(size_t in_dim, size_t hidden_dim, Rng* rng);

  struct State {
    Var h;
    Var c;
  };
  struct RawState {
    Matrix h;
    Matrix c;
  };

  /// Zero state for a batch of `batch` rows on `tape`.
  State ZeroState(Tape* tape, size_t batch) const;
  RawState ZeroRawState(size_t batch) const;

  /// One step of the recurrence on the tape (training). CHECK-fails on a
  /// cell serving quantized weights — quantized models are inference-only.
  State Step(Tape* tape, Var x, const State& state);
  /// One step, tape-free (inference; used by DeepAR ancestral sampling).
  /// With quantized weights both recurrence GEMMs dequantize on the fly.
  RawState Step(const Matrix& x, const RawState& state) const;

  /// Serving-only weight replacement for the two recurrence matrices
  /// (in x 4H and H x 4H); same ownership contract as
  /// Dense::SetQuantizedWeights. The bias stays a fp64 parameter.
  Status SetQuantizedWeights(const tensor::QTensorView& wx,
                             const tensor::QTensorView& wh);
  bool has_quantized_weights() const { return qwx_.valid(); }

  std::vector<Parameter*> Params() override;

  size_t hidden_dim() const { return hidden_dim_; }
  size_t in_dim() const { return in_dim_; }

 private:
  size_t in_dim_;
  size_t hidden_dim_;
  Parameter w_x_;  // in x 4H
  Parameter w_h_;  // H x 4H
  Parameter b_;    // 1 x 4H
  tensor::QTensorView qwx_;  ///< serving-only quantized w_x view
  tensor::QTensorView qwh_;  ///< serving-only quantized w_h view
};

/// Row-wise layer normalization with learned gain/bias
/// (normalizes each row to zero mean / unit variance).
class LayerNorm final : public Module {
 public:
  explicit LayerNorm(size_t dim);

  Var Forward(Tape* tape, Var x);
  Matrix Apply(const Matrix& x) const;

  std::vector<Parameter*> Params() override;

 private:
  size_t dim_;
  Parameter gain_;  // 1 x dim
  Parameter bias_;  // 1 x dim
};

/// Gated Residual Network, the TFT building block:
///   GRN(x) = LayerNorm(skip(x) + GLU(W2 * ReLU(W1 x + b1) + b2))
/// where GLU(a) = sigmoid(W4 a + b4) * (W5 a + b5). When in_dim != out_dim
/// the skip path is a linear projection.
class GatedResidualNetwork final : public Module {
 public:
  GatedResidualNetwork(size_t in_dim, size_t hidden_dim, size_t out_dim,
                       Rng* rng);

  Var Forward(Tape* tape, Var x);
  Matrix Apply(const Matrix& x) const;

  std::vector<Parameter*> Params() override;

 private:
  size_t in_dim_;
  size_t out_dim_;
  Dense fc1_;
  Dense fc2_;
  Dense gate_;
  Dense value_;
  // Projection used only when in_dim != out_dim.
  std::unique_ptr<Dense> skip_proj_;
  LayerNorm norm_;
};

/// Scaled dot-product attention (single head over one sequence):
///   Attention(Q, K, V) = softmax(Q K^T / sqrt(d_k)) V.
/// Q: m x d, K: n x d, V: n x d_v. Returns m x d_v (training graph).
Var ScaledDotAttention(Tape* tape, Var q, Var k, Var v);
/// Tape-free counterpart.
Matrix ScaledDotAttention(const Matrix& q, const Matrix& k, const Matrix& v);

/// Interpretable multi-head attention in the TFT spirit: separate query/key
/// projections per head, a value projection *shared* across heads, and the
/// head outputs averaged before a final linear map — so attention weights
/// remain interpretable as one distribution.
class InterpretableMultiHeadAttention final : public Module {
 public:
  InterpretableMultiHeadAttention(size_t dim, size_t num_heads, Rng* rng);

  /// q: m x dim (decoder), kv: n x dim (encoder memory). Returns m x dim.
  Var Forward(Tape* tape, Var q, Var kv);
  Matrix Apply(const Matrix& q, const Matrix& kv) const;

  std::vector<Parameter*> Params() override;

 private:
  size_t dim_;
  size_t num_heads_;
  size_t head_dim_;
  std::vector<std::unique_ptr<Dense>> q_proj_;  // one per head
  std::vector<std::unique_ptr<Dense>> k_proj_;  // one per head
  Dense v_proj_;                                // shared value projection
  Dense out_proj_;
};

}  // namespace rpas::nn

#endif  // RPAS_NN_LAYERS_H_
