#ifndef RPAS_NN_TRAINER_H_
#define RPAS_NN_TRAINER_H_

#include <functional>
#include <vector>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "nn/optimizer.h"

namespace rpas::nn {

/// Shared training-loop configuration for the neural forecasters.
struct TrainConfig {
  int steps = 500;          ///< optimizer steps
  double lr = 1e-3;         ///< paper §IV-A: fixed 1e-3 for all models
  double clip_norm = 10.0;  ///< global gradient-norm clip
  uint64_t seed = 42;
  int log_every = 0;  ///< 0 disables progress logging
};

/// Result of a training run.
struct TrainSummary {
  double final_loss = 0.0;
  double best_loss = 0.0;
  int steps_run = 0;
};

/// Generic define-by-run training loop: at each step builds a fresh tape via
/// `loss_fn` (which samples its own minibatch from `rng`), backpropagates,
/// clips, and applies Adam. Returns the loss trajectory summary.
///
/// `loss_fn` must return a 1x1 loss Var on the provided tape.
TrainSummary TrainLoop(
    const TrainConfig& config, const std::vector<Parameter*>& params,
    const std::function<autodiff::Var(autodiff::Tape*, Rng*)>& loss_fn);

}  // namespace rpas::nn

#endif  // RPAS_NN_TRAINER_H_
