#ifndef RPAS_NN_TRAINER_H_
#define RPAS_NN_TRAINER_H_

#include <functional>
#include <vector>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"

namespace rpas::nn {

/// Shared training-loop configuration for the neural forecasters.
struct TrainConfig {
  int steps = 500;          ///< optimizer steps
  double lr = 1e-3;         ///< paper §IV-A: fixed 1e-3 for all models
  double clip_norm = 10.0;  ///< global gradient-norm clip
  uint64_t seed = 42;
  int log_every = 0;  ///< 0 disables progress logging
  /// Capture the per-step loss trajectory in TrainSummary::loss_history
  /// (off by default: a TFT run is hundreds of steps per fold and most
  /// callers only need the summary scalars).
  bool record_loss = false;
  /// Metrics sink for per-step loss / grad-norm / clip-event telemetry;
  /// null routes to obs::MetricsRegistry::Global() (a no-op unless
  /// RPAS_METRICS or a bench's --metrics-out enabled it).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Result of a training run.
struct TrainSummary {
  double final_loss = 0.0;
  double best_loss = 0.0;
  int steps_run = 0;
  /// Pre-clip global gradient norm of the last step.
  double final_grad_norm = 0.0;
  /// Steps whose gradient norm exceeded clip_norm and was rescaled.
  int clip_events = 0;
  /// Per-step losses; filled only when TrainConfig::record_loss is set.
  std::vector<double> loss_history;
  /// Tape-arena heap allocations after the first step (warmup) and at the
  /// end of the run. Equal values mean the steady-state loop allocated
  /// nothing per step — the O(1)-allocation property the arena exists for.
  size_t arena_allocs_after_warmup = 0;
  size_t arena_allocs_final = 0;
};

/// Generic define-by-run training loop: at each step builds a fresh tape via
/// `loss_fn` (which samples its own minibatch from `rng`), backpropagates,
/// clips, and applies Adam. Returns the loss trajectory summary.
///
/// `loss_fn` must return a 1x1 loss Var on the provided tape.
TrainSummary TrainLoop(
    const TrainConfig& config, const std::vector<Parameter*>& params,
    const std::function<autodiff::Var(autodiff::Tape*, Rng*)>& loss_fn);

}  // namespace rpas::nn

#endif  // RPAS_NN_TRAINER_H_
