#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace rpas::nn {

double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm) {
  RPAS_CHECK(max_norm > 0.0);
  double sq = 0.0;
  for (Parameter* p : params) {
    for (size_t i = 0; i < p->grad.size(); ++i) {
      sq += p->grad[i] * p->grad[i];
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (Parameter* p : params) {
      for (size_t i = 0; i < p->grad.size(); ++i) {
        p->grad[i] *= scale;
      }
    }
  }
  return norm;
}

Adam::Adam() : Adam(Options()) {}

Adam::Adam(Options options) : options_(options) {}

void Adam::Step(const std::vector<Parameter*>& params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (Parameter* p : params) {
    auto [it, inserted] = moments_.try_emplace(p);
    if (inserted) {
      it->second.m = Matrix(p->value.rows(), p->value.cols());
      it->second.v = Matrix(p->value.rows(), p->value.cols());
    }
    Matrix& m = it->second.m;
    Matrix& v = it->second.v;
    for (size_t i = 0; i < p->value.size(); ++i) {
      double g = p->grad[i];
      if (options_.weight_decay != 0.0) {
        g += options_.weight_decay * p->value[i];
      }
      m[i] = options_.beta1 * m[i] + (1.0 - options_.beta1) * g;
      v[i] = options_.beta2 * v[i] + (1.0 - options_.beta2) * g * g;
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      p->value[i] -=
          options_.lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
    p->ZeroGrad();
  }
}

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  RPAS_CHECK(lr > 0.0);
  RPAS_CHECK(momentum >= 0.0 && momentum < 1.0);
}

void Sgd::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    if (momentum_ > 0.0) {
      auto [it, inserted] = velocity_.try_emplace(p);
      if (inserted) {
        it->second = Matrix(p->value.rows(), p->value.cols());
      }
      Matrix& vel = it->second;
      for (size_t i = 0; i < p->value.size(); ++i) {
        vel[i] = momentum_ * vel[i] - lr_ * p->grad[i];
        p->value[i] += vel[i];
      }
    } else {
      for (size_t i = 0; i < p->value.size(); ++i) {
        p->value[i] -= lr_ * p->grad[i];
      }
    }
    p->ZeroGrad();
  }
}

}  // namespace rpas::nn
