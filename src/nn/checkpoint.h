#ifndef RPAS_NN_CHECKPOINT_H_
#define RPAS_NN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "common/result.h"

namespace rpas::nn {

/// Order-based parameter checkpointing. A checkpoint stores a signature
/// string (model type + architecture fingerprint) followed by every
/// parameter matrix in Params() order; loading verifies the signature and
/// every shape, so weights can only be restored into an identically
/// configured model.
///
/// Format (text, line-oriented):
///   RPASCKPT1
///   <signature>
///   <num_tensors>
///   <rows> <cols>
///   <row-major values, space separated>   (one line per tensor)
///   ...

/// Writes the parameters to `path`. Returns IoError on filesystem failure.
Status SaveParameters(const std::string& path, const std::string& signature,
                      const std::vector<autodiff::Parameter*>& params);

/// Restores parameters from `path`. Returns InvalidArgument when the file's
/// signature, tensor count, or any shape does not match `params`.
Status LoadParameters(const std::string& path, const std::string& signature,
                      const std::vector<autodiff::Parameter*>& params);

}  // namespace rpas::nn

#endif  // RPAS_NN_CHECKPOINT_H_
