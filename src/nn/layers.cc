#include "nn/layers.h"

#include <cmath>

#include "nn/init.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

#include "common/strings.h"

namespace rpas::nn {

namespace ops = ::rpas::tensor;
namespace kernels = ::rpas::tensor::kernels;

namespace {

/// Shared validation for the serving-only quantized weight views.
Status CheckQuantView(const tensor::QTensorView& v, size_t rows, size_t cols,
                      const char* what) {
  if (!v.valid()) {
    return Status::InvalidArgument(
        StrFormat("%s: null quantized weight view", what));
  }
  if (v.rows != rows || v.cols != cols) {
    return Status::InvalidArgument(
        StrFormat("%s: quantized weights are %zu x %zu, layer needs %zu x "
                  "%zu",
                  what, v.rows, v.cols, rows, cols));
  }
  if (v.payload_bytes != tensor::PayloadBytes(v.dtype, v.size())) {
    return Status::InvalidArgument(
        StrFormat("%s: %s payload of %zu bytes does not match the %zu x %zu "
                  "shape",
                  what, tensor::DTypeName(v.dtype), v.payload_bytes, v.rows,
                  v.cols));
  }
  return Status::OK();
}

}  // namespace

size_t Module::NumParams() {
  size_t n = 0;
  for (Parameter* p : Params()) {
    n += p->size();
  }
  return n;
}

void Module::ZeroGrads() {
  for (Parameter* p : Params()) {
    p->ZeroGrad();
  }
}

// ---------------------------------------------------------------- Dense ---

Dense::Dense(size_t in_dim, size_t out_dim, Activation act, Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      w_(XavierUniform(in_dim, out_dim, rng)),
      b_(Zeros(1, out_dim)) {}

Var Dense::Forward(Tape* tape, Var x) {
  RPAS_CHECK(!qw_.valid())
      << "Dense::Forward: training through quantized weights is unsupported";
  Var y = tape->AddRowBroadcast(tape->MatMul(x, tape->Bind(&w_)),
                                tape->Bind(&b_));
  switch (act_) {
    case Activation::kNone:
      return y;
    case Activation::kRelu:
      return tape->Relu(y);
    case Activation::kTanh:
      return tape->Tanh(y);
    case Activation::kSigmoid:
      return tape->Sigmoid(y);
    case Activation::kSoftplus:
      return tape->Softplus(y);
  }
  return y;
}

Status Dense::SetQuantizedWeights(const tensor::QTensorView& w) {
  RPAS_RETURN_IF_ERROR(CheckQuantView(w, in_dim_, out_dim_, "Dense"));
  qw_ = w;
  return Status::OK();
}

Matrix Dense::Apply(const Matrix& x) const {
  Matrix product;
  if (qw_.valid()) {
    RPAS_CHECK(x.cols() == in_dim_) << "Dense::Apply input dim mismatch";
    product = Matrix(x.rows(), out_dim_);  // zeroed; GemmQuant accumulates
    kernels::GemmQuant(kernels::ActiveLevel(), x.rows(), out_dim_, in_dim_,
                       x.data(), x.cols(), qw_.dtype, qw_.payload,
                       product.data(), out_dim_);
  } else {
    product = ops::MatMul(x, w_.value);
  }
  Matrix y = ops::AddRowBroadcast(product, b_.value);
  // In-place vectorized activations (the Ew* kernels read and write
  // sequentially, so src == dst is safe).
  const kernels::SimdLevel level = kernels::ActiveLevel();
  switch (act_) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      kernels::EwRelu(level, y.size(), y.data(), y.data());
      break;
    case Activation::kTanh:
      kernels::EwTanh(level, y.size(), y.data(), y.data());
      break;
    case Activation::kSigmoid:
      kernels::EwSigmoid(level, y.size(), y.data(), y.data());
      break;
    case Activation::kSoftplus:
      kernels::EwSoftplus(level, y.size(), y.data(), y.data());
      break;
  }
  return y;
}

std::vector<Parameter*> Dense::Params() { return {&w_, &b_}; }

// ------------------------------------------------------------- LstmCell ---

LstmCell::LstmCell(size_t in_dim, size_t hidden_dim, Rng* rng)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      w_x_(XavierUniform(in_dim, 4 * hidden_dim, rng)),
      w_h_(XavierUniform(hidden_dim, 4 * hidden_dim, rng)),
      b_(Zeros(1, 4 * hidden_dim)) {
  // Forget-gate bias = 1 encourages remembering early in training.
  for (size_t c = hidden_dim; c < 2 * hidden_dim; ++c) {
    b_.value(0, c) = 1.0;
  }
}

LstmCell::State LstmCell::ZeroState(Tape* tape, size_t batch) const {
  return {tape->Zeros(batch, hidden_dim_), tape->Zeros(batch, hidden_dim_)};
}

LstmCell::RawState LstmCell::ZeroRawState(size_t batch) const {
  return {Matrix(batch, hidden_dim_), Matrix(batch, hidden_dim_)};
}

// Fused step: one node carries [h | c] (batch x 2H). Pre-activations come
// from two packed GEMMs plus a fused bias pass, the activation/cell update
// runs in kernels::LstmCellForward, and the backward replays the whole chain
// through kernels::LstmCellBackward + GEMM kernels. At the scalar dispatch
// level every intermediate rounding matches the old 14-node-per-step graph,
// so parameter gradients are bit-identical to the unfused implementation.
Status LstmCell::SetQuantizedWeights(const tensor::QTensorView& wx,
                                     const tensor::QTensorView& wh) {
  RPAS_RETURN_IF_ERROR(
      CheckQuantView(wx, in_dim_, 4 * hidden_dim_, "LstmCell w_x"));
  RPAS_RETURN_IF_ERROR(
      CheckQuantView(wh, hidden_dim_, 4 * hidden_dim_, "LstmCell w_h"));
  qwx_ = wx;
  qwh_ = wh;
  return Status::OK();
}

LstmCell::State LstmCell::Step(Tape* tape, Var x, const State& state) {
  RPAS_CHECK(!qwx_.valid())
      << "LstmCell::Step: training through quantized weights is unsupported";
  const size_t h = hidden_dim_;
  const Matrix& xv = x.value();
  const Matrix& hv = state.h.value();
  const Matrix& cv = state.c.value();
  const size_t batch = xv.rows();
  RPAS_CHECK(xv.cols() == in_dim_ && hv.cols() == h && cv.cols() == h)
      << "LstmCell::Step shape mismatch";

  Var wx = tape->Bind(&w_x_);
  Var wh = tape->Bind(&w_h_);
  Var b = tape->Bind(&b_);

  // act starts as x*Wx; t2 holds h*Wh. The bias pass keeps the historical
  // rounding order: (xWx + hWh) + b, two roundings per element.
  Matrix* act = tape->Scratch(batch, 4 * h);
  Matrix* t2 = tape->Scratch(batch, 4 * h);
  ops::MatMulInto(xv, w_x_.value, act);
  ops::MatMulInto(hv, w_h_.value, t2);
  const Matrix& bv = b_.value;
  for (size_t r = 0; r < batch; ++r) {
    for (size_t c = 0; c < 4 * h; ++c) {
      (*act)(r, c) = ((*act)(r, c) + (*t2)(r, c)) + bv(0, c);
    }
  }

  Matrix* tanh_c = tape->Scratch(batch, h);
  const size_t xi = x.id();
  const size_t hi = state.h.id();
  const size_t ci = state.c.id();
  const size_t wxi = wx.id();
  const size_t whi = wh.id();
  const size_t bi = b.id();
  Matrix* value = nullptr;
  Var fused = tape->AllocNode(
      batch, 2 * h, /*requires_grad=*/true,
      [xi, hi, ci, wxi, whi, bi, act, tanh_c](const Matrix& g, Tape* t) {
        const Matrix& cpv = t->ValueOf(ci);
        const size_t batch2 = g.rows();
        const size_t h2 = cpv.cols();
        const kernels::SimdLevel level = kernels::ActiveLevel();
        // g packs [dh | dc] with leading dimension 2H.
        Matrix* dgates = t->Scratch(batch2, 4 * h2);
        Matrix* dcp = t->Scratch(batch2, h2);
        kernels::LstmCellBackward(level, batch2, h2, act->data(), cpv.data(),
                                  h2, tanh_c->data(), g.data(), 2 * h2,
                                  g.data() + h2, 2 * h2, dgates->data(),
                                  dcp->data());
        t->AccumulateGrad(ci, *dcp);
        // db = column sums of dgates (same r-outer order as ops::ColSums).
        Matrix* db = t->Scratch(1, 4 * h2);
        for (size_t r = 0; r < batch2; ++r) {
          for (size_t c = 0; c < 4 * h2; ++c) {
            (*db)(0, c) += (*dgates)(r, c);
          }
        }
        t->AccumulateGrad(bi, *db);
        const Matrix& whv = t->ValueOf(whi);
        if (t->RequiresGrad(Var(t, hi))) {
          Matrix* s = t->Scratch(batch2, h2);
          ops::MatMulNTInto(*dgates, whv, s);  // dh_prev = dgates * Wh^T
          t->AccumulateGrad(hi, *s);
        }
        {
          Matrix* s = t->Scratch(h2, 4 * h2);
          ops::MatMulTNInto(t->ValueOf(hi), *dgates, s);  // dWh = h^T dgates
          t->AccumulateGrad(whi, *s);
        }
        const Matrix& wxv = t->ValueOf(wxi);
        if (t->RequiresGrad(Var(t, xi))) {
          Matrix* s = t->Scratch(batch2, wxv.rows());
          ops::MatMulNTInto(*dgates, wxv, s);  // dx = dgates * Wx^T
          t->AccumulateGrad(xi, *s);
        }
        {
          Matrix* s = t->Scratch(wxv.rows(), 4 * h2);
          ops::MatMulTNInto(t->ValueOf(xi), *dgates, s);  // dWx = x^T dgates
          t->AccumulateGrad(wxi, *s);
        }
      },
      &value);
  // Activates `act` in place (saved for the backward) and writes h into
  // columns [0, H), c into [H, 2H) of the fused value.
  kernels::LstmCellForward(kernels::ActiveLevel(), batch, h, act->data(),
                           cv.data(), h, value->data(), 2 * h,
                           value->data() + h, 2 * h, tanh_c->data());
  Var new_h = tape->SliceCols(fused, 0, h);
  Var new_c = tape->SliceCols(fused, h, 2 * h);
  return {new_h, new_c};
}

LstmCell::RawState LstmCell::Step(const Matrix& x,
                                  const RawState& state) const {
  const size_t h = hidden_dim_;
  const size_t batch = x.rows();
  Matrix gates(batch, 4 * h);
  Matrix t2(batch, 4 * h);
  if (qwx_.valid()) {
    // Quantized serving path: both recurrence GEMMs dequantize the stored
    // payloads on the fly. gates/t2 are zero-initialized, so the
    // accumulating GemmQuant computes exactly the products MatMulInto
    // would.
    RPAS_CHECK(x.cols() == in_dim_ && state.h.cols() == h);
    const kernels::SimdLevel level = kernels::ActiveLevel();
    kernels::GemmQuant(level, batch, 4 * h, in_dim_, x.data(), x.cols(),
                       qwx_.dtype, qwx_.payload, gates.data(), 4 * h);
    kernels::GemmQuant(level, batch, 4 * h, h, state.h.data(),
                       state.h.cols(), qwh_.dtype, qwh_.payload, t2.data(),
                       4 * h);
  } else {
    ops::MatMulInto(x, w_x_.value, &gates);
    ops::MatMulInto(state.h, w_h_.value, &t2);
  }
  const Matrix& bv = b_.value;
  for (size_t r = 0; r < batch; ++r) {
    for (size_t c = 0; c < 4 * h; ++c) {
      gates(r, c) = (gates(r, c) + t2(r, c)) + bv(0, c);
    }
  }
  RawState out;
  out.h = Matrix(batch, h);
  out.c = Matrix(batch, h);
  kernels::LstmCellForward(kernels::ActiveLevel(), batch, h, gates.data(),
                           state.c.data(), h, out.h.data(), h, out.c.data(),
                           h, /*tanh_c=*/nullptr);
  return out;
}

std::vector<Parameter*> LstmCell::Params() { return {&w_x_, &w_h_, &b_}; }

// ------------------------------------------------------------ LayerNorm ---

namespace {
constexpr double kLnEps = 1e-5;
}

LayerNorm::LayerNorm(size_t dim)
    : dim_(dim), gain_(Constant(1, dim, 1.0)), bias_(Zeros(1, dim)) {}

Var LayerNorm::Forward(Tape* tape, Var x) {
  RPAS_CHECK(x.cols() == dim_) << "LayerNorm dim mismatch";
  const Matrix& xv = x.value();
  const size_t rows = xv.rows();
  const size_t d = dim_;

  // Normalized activations computed out-of-graph; custom node provides the
  // analytic LayerNorm backward (cheaper and simpler than composing
  // primitive broadcast ops).
  Matrix normalized(rows, d);
  std::vector<double> inv_std(rows);
  for (size_t r = 0; r < rows; ++r) {
    double mean = 0.0;
    for (size_t c = 0; c < d; ++c) {
      mean += xv(r, c);
    }
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (size_t c = 0; c < d; ++c) {
      const double diff = xv(r, c) - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(d);
    const double istd = 1.0 / std::sqrt(var + kLnEps);
    inv_std[r] = istd;
    for (size_t c = 0; c < d; ++c) {
      normalized(r, c) = (xv(r, c) - mean) * istd;
    }
  }

  const size_t xi = x.id();
  Var norm_node = tape->Custom(
      {x}, normalized,
      [xi, normalized, inv_std, rows, d](const Matrix& g, Tape* t) {
        // dL/dx = istd/d * (d*g - sum(g) - xhat * sum(g*xhat)) per row.
        Matrix gx(rows, d);
        for (size_t r = 0; r < rows; ++r) {
          double sum_g = 0.0;
          double sum_gx = 0.0;
          for (size_t c = 0; c < d; ++c) {
            sum_g += g(r, c);
            sum_gx += g(r, c) * normalized(r, c);
          }
          for (size_t c = 0; c < d; ++c) {
            gx(r, c) = inv_std[r] / static_cast<double>(d) *
                       (static_cast<double>(d) * g(r, c) - sum_g -
                        normalized(r, c) * sum_gx);
          }
        }
        t->AccumulateGrad(xi, gx);
      });
  return tape->AddRowBroadcast(
      tape->MulRowBroadcast(norm_node, tape->Bind(&gain_)),
      tape->Bind(&bias_));
}

Matrix LayerNorm::Apply(const Matrix& x) const {
  RPAS_CHECK(x.cols() == dim_) << "LayerNorm dim mismatch";
  Matrix out(x.rows(), dim_);
  for (size_t r = 0; r < x.rows(); ++r) {
    double mean = 0.0;
    for (size_t c = 0; c < dim_; ++c) {
      mean += x(r, c);
    }
    mean /= static_cast<double>(dim_);
    double var = 0.0;
    for (size_t c = 0; c < dim_; ++c) {
      const double diff = x(r, c) - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(dim_);
    const double istd = 1.0 / std::sqrt(var + kLnEps);
    for (size_t c = 0; c < dim_; ++c) {
      out(r, c) =
          (x(r, c) - mean) * istd * gain_.value(0, c) + bias_.value(0, c);
    }
  }
  return out;
}

std::vector<Parameter*> LayerNorm::Params() { return {&gain_, &bias_}; }

// ------------------------------------------------- GatedResidualNetwork ---

GatedResidualNetwork::GatedResidualNetwork(size_t in_dim, size_t hidden_dim,
                                           size_t out_dim, Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      fc1_(in_dim, hidden_dim, Dense::Activation::kRelu, rng),
      fc2_(hidden_dim, out_dim, Dense::Activation::kNone, rng),
      gate_(out_dim, out_dim, Dense::Activation::kSigmoid, rng),
      value_(out_dim, out_dim, Dense::Activation::kNone, rng),
      norm_(out_dim) {
  if (in_dim != out_dim) {
    skip_proj_ = std::make_unique<Dense>(in_dim, out_dim,
                                         Dense::Activation::kNone, rng);
  }
}

Var GatedResidualNetwork::Forward(Tape* tape, Var x) {
  Var hidden = fc2_.Forward(tape, fc1_.Forward(tape, x));
  Var glu = tape->Mul(gate_.Forward(tape, hidden),
                      value_.Forward(tape, hidden));
  Var skip = skip_proj_ ? skip_proj_->Forward(tape, x) : x;
  return norm_.Forward(tape, tape->Add(skip, glu));
}

Matrix GatedResidualNetwork::Apply(const Matrix& x) const {
  Matrix hidden = fc2_.Apply(fc1_.Apply(x));
  Matrix glu = ops::Mul(gate_.Apply(hidden), value_.Apply(hidden));
  Matrix skip = skip_proj_ ? skip_proj_->Apply(x) : x;
  return norm_.Apply(ops::Add(skip, glu));
}

std::vector<Parameter*> GatedResidualNetwork::Params() {
  std::vector<Parameter*> params;
  for (Module* m : std::initializer_list<Module*>{&fc1_, &fc2_, &gate_,
                                                  &value_, &norm_}) {
    for (Parameter* p : m->Params()) {
      params.push_back(p);
    }
  }
  if (skip_proj_) {
    for (Parameter* p : skip_proj_->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

// ------------------------------------------------------------ Attention ---

Var ScaledDotAttention(Tape* tape, Var q, Var k, Var v) {
  RPAS_CHECK(q.cols() == k.cols()) << "attention dim mismatch";
  const double scale = 1.0 / std::sqrt(static_cast<double>(q.cols()));
  Var scores = tape->Scale(tape->MatMul(q, tape->Transpose(k)), scale);
  return tape->MatMul(tape->SoftmaxRows(scores), v);
}

Matrix ScaledDotAttention(const Matrix& q, const Matrix& k, const Matrix& v) {
  RPAS_CHECK(q.cols() == k.cols()) << "attention dim mismatch";
  const double scale = 1.0 / std::sqrt(static_cast<double>(q.cols()));
  Matrix scores = ops::Scale(ops::MatMul(q, ops::Transpose(k)), scale);
  for (size_t r = 0; r < scores.rows(); ++r) {
    double mx = -1e300;
    for (size_t c = 0; c < scores.cols(); ++c) {
      mx = std::max(mx, scores(r, c));
    }
    double z = 0.0;
    for (size_t c = 0; c < scores.cols(); ++c) {
      scores(r, c) = std::exp(scores(r, c) - mx);
      z += scores(r, c);
    }
    for (size_t c = 0; c < scores.cols(); ++c) {
      scores(r, c) /= z;
    }
  }
  return ops::MatMul(scores, v);
}

InterpretableMultiHeadAttention::InterpretableMultiHeadAttention(
    size_t dim, size_t num_heads, Rng* rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      v_proj_(dim, dim / num_heads, Dense::Activation::kNone, rng),
      out_proj_(dim / num_heads, dim, Dense::Activation::kNone, rng) {
  RPAS_CHECK(num_heads > 0 && dim % num_heads == 0)
      << "attention dim must be divisible by num_heads";
  for (size_t h = 0; h < num_heads_; ++h) {
    q_proj_.push_back(std::make_unique<Dense>(dim, head_dim_,
                                              Dense::Activation::kNone, rng));
    k_proj_.push_back(std::make_unique<Dense>(dim, head_dim_,
                                              Dense::Activation::kNone, rng));
  }
}

Var InterpretableMultiHeadAttention::Forward(Tape* tape, Var q, Var kv) {
  Var value = v_proj_.Forward(tape, kv);  // shared across heads
  Var head_sum;
  for (size_t h = 0; h < num_heads_; ++h) {
    Var qh = q_proj_[h]->Forward(tape, q);
    Var kh = k_proj_[h]->Forward(tape, kv);
    Var att = ScaledDotAttention(tape, qh, kh, value);
    head_sum = h == 0 ? att : tape->Add(head_sum, att);
  }
  Var mean_heads =
      tape->Scale(head_sum, 1.0 / static_cast<double>(num_heads_));
  return out_proj_.Forward(tape, mean_heads);
}

Matrix InterpretableMultiHeadAttention::Apply(const Matrix& q,
                                              const Matrix& kv) const {
  Matrix value = v_proj_.Apply(kv);
  Matrix head_sum;
  for (size_t h = 0; h < num_heads_; ++h) {
    Matrix qh = q_proj_[h]->Apply(q);
    Matrix kh = k_proj_[h]->Apply(kv);
    Matrix att = ScaledDotAttention(qh, kh, value);
    head_sum = h == 0 ? att : ops::Add(head_sum, att);
  }
  return out_proj_.Apply(
      ops::Scale(head_sum, 1.0 / static_cast<double>(num_heads_)));
}

std::vector<Parameter*> InterpretableMultiHeadAttention::Params() {
  std::vector<Parameter*> params;
  for (auto& d : q_proj_) {
    for (Parameter* p : d->Params()) {
      params.push_back(p);
    }
  }
  for (auto& d : k_proj_) {
    for (Parameter* p : d->Params()) {
      params.push_back(p);
    }
  }
  for (Parameter* p : v_proj_.Params()) {
    params.push_back(p);
  }
  for (Parameter* p : out_proj_.Params()) {
    params.push_back(p);
  }
  return params;
}

}  // namespace rpas::nn
