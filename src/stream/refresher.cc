#include "stream/refresher.h"

#include "common/logging.h"

namespace rpas::stream {

const char* RefreshKindToString(RefreshKind kind) {
  switch (kind) {
    case RefreshKind::kNone:
      return "none";
    case RefreshKind::kRecursive:
      return "recursive";
    case RefreshKind::kFineTune:
      return "fine_tune";
    case RefreshKind::kResync:
      return "resync";
    case RefreshKind::kFullRetrain:
      return "full_retrain";
  }
  return "unknown";
}

IncrementalRefresher::IncrementalRefresher(forecast::Forecaster* target,
                                           RefresherOptions options)
    : target_(target), options_(options) {
  RPAS_CHECK(target != nullptr) << "refresher needs a target forecaster";
  RPAS_CHECK(options_.drift_threshold > 0.0);
}

Status IncrementalRefresher::Prime(const ts::TimeSeries& history) {
  RPAS_RETURN_IF_ERROR(target_->ResyncState(history));
  baseline_loss_sum_ = 0.0;
  baseline_count_ = 0;
  recent_losses_.clear();
  recent_loss_sum_ = 0.0;
  drift_pending_ = false;
  return Status::OK();
}

void IncrementalRefresher::ObserveForecastLoss(double wql) {
  if (options_.drift_window == 0) {
    return;
  }
  if (baseline_count_ < options_.drift_window) {
    // Still collecting the baseline; the guard cannot trip yet.
    baseline_loss_sum_ += wql;
    ++baseline_count_;
    return;
  }
  recent_losses_.push_back(wql);
  recent_loss_sum_ += wql;
  while (recent_losses_.size() > options_.drift_window) {
    recent_loss_sum_ -= recent_losses_.front();
    recent_losses_.pop_front();
  }
  if (recent_losses_.size() < options_.drift_window) {
    return;
  }
  const double baseline =
      baseline_loss_sum_ / static_cast<double>(baseline_count_);
  const double rolling =
      recent_loss_sum_ / static_cast<double>(recent_losses_.size());
  if (rolling > options_.drift_threshold * baseline) {
    drift_pending_ = true;
  }
}

Result<RefreshOutcome> IncrementalRefresher::FullRetrain(
    const ts::TimeSeries& history) {
  const size_t window = options_.retrain_window;
  const size_t begin =
      (window > 0 && history.size() > window) ? history.size() - window : 0;
  const ts::TimeSeries train = history.Slice(begin, history.size());
  RPAS_RETURN_IF_ERROR(target_->Fit(train));
  // A fresh fit establishes a new quality regime; restart the guard.
  baseline_loss_sum_ = 0.0;
  baseline_count_ = 0;
  recent_losses_.clear();
  recent_loss_sum_ = 0.0;
  drift_pending_ = false;

  RefreshOutcome outcome;
  outcome.kind = RefreshKind::kFullRetrain;
  ++stats_.refreshes;
  ++stats_.full_retrains;
  return outcome;
}

Result<RefreshOutcome> IncrementalRefresher::Refresh(
    const ts::TimeSeries& history, size_t new_points, uint64_t dropped) {
  if (dropped > 0) {
    // The ring lost points we never saw: per-point replay is impossible, so
    // rebuild state from the full history (which already contains the new
    // points) and do NOT also run an incremental update this round — the
    // resync has folded them in; updating again would double-push.
    RPAS_RETURN_IF_ERROR(target_->ResyncState(history));
    RefreshOutcome outcome;
    outcome.kind = RefreshKind::kResync;
    ++stats_.refreshes;
    ++stats_.resyncs;
    stats_.points_consumed += new_points;
    return outcome;
  }
  if (drift_pending_) {
    return FullRetrain(history);
  }
  if (new_points == 0) {
    return RefreshOutcome{};
  }
  if (!target_->SupportsIncrementalUpdate()) {
    // No incremental path (Holt-Winters, TFT, ...): every refresh is a
    // fallback retrain on the trailing window.
    return FullRetrain(history);
  }
  RPAS_ASSIGN_OR_RETURN(
      const forecast::Forecaster::IncrementalUpdateReport report,
      target_->IncrementalUpdate(history, new_points));
  RefreshOutcome outcome;
  outcome.points = report.points;
  outcome.gradient_steps = report.gradient_steps;
  outcome.kind = report.gradient_steps > 0 ? RefreshKind::kFineTune
                                           : RefreshKind::kRecursive;
  ++stats_.refreshes;
  stats_.points_consumed += report.points;
  if (report.gradient_steps > 0) {
    ++stats_.fine_tunes;
    stats_.gradient_steps += static_cast<uint64_t>(report.gradient_steps);
  } else {
    ++stats_.recursive_updates;
  }
  return outcome;
}

}  // namespace rpas::stream
