#include "stream/ring.h"

#include <algorithm>

#include "common/logging.h"

namespace rpas::stream {

IngestRing::IngestRing(size_t capacity)
    : capacity_(capacity), slots_(capacity) {
  RPAS_CHECK(capacity > 0) << "ingest ring needs capacity >= 1";
}

uint64_t IngestRing::Push(double value) {
  const uint64_t seq = head_.load(std::memory_order_relaxed);
  if (seq >= capacity_) {
    // Retire the slot we are about to overwrite *before* writing it, so a
    // reader that copies the new value is guaranteed to observe the
    // advanced tail when it re-validates (the slot's release store orders
    // this tail store before it).
    const uint64_t min_tail = seq + 1 - capacity_;
    if (tail_.load(std::memory_order_relaxed) < min_tail) {
      tail_.store(min_tail, std::memory_order_release);
    }
  }
  slots_[seq % capacity_].store(value, std::memory_order_release);
  head_.store(seq + 1, std::memory_order_release);
  return seq;
}

size_t IngestRing::size() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head <= tail) {
    return 0;  // tail was loaded after the producer lapped the head we saw
  }
  return static_cast<size_t>(std::min<uint64_t>(head - tail, capacity_));
}

IngestRing::ReadResult IngestRing::ReadSince(uint64_t since,
                                             std::vector<double>* out) const {
  ReadResult result;
  for (;;) {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t start = std::max(since, tail);
    if (start >= head) {
      result.first_seq = start;
      result.count = 0;
      result.missed = start - since;
      return result;
    }
    if (out == nullptr) {
      // No copy, no torn data to validate: report [start, head) delivered.
      result.first_seq = start;
      result.count = static_cast<size_t>(head - start);
      result.missed = start - since;
      return result;
    }
    const size_t base = out->size();
    out->reserve(base + static_cast<size_t>(head - start));
    for (uint64_t s = start; s < head; ++s) {
      out->push_back(slots_[s % capacity_].load(std::memory_order_acquire));
    }
    // Re-validate: the producer retires a slot (advances tail) before
    // overwriting it, and the acquire loads above order that tail store
    // before this check — so if every copied slot still held its original
    // point, the tail cannot have passed `start` here.
    if (tail_.load(std::memory_order_acquire) <= start) {
      result.first_seq = start;
      result.count = static_cast<size_t>(head - start);
      result.missed = start - since;
      return result;
    }
    // The producer lapped us mid-copy; some copied values may belong to
    // newer sequences. Discard and retry — `start` strictly advances (the
    // new tail is larger), so the loop terminates.
    out->resize(base);
  }
}

StreamCursor::StreamCursor(const IngestRing* ring)
    : ring_(ring), next_seq_(0) {
  RPAS_CHECK(ring != nullptr);
  next_seq_ = ring_->tail_seq();
}

StreamCursor::Batch StreamCursor::Poll(std::vector<double>* out) {
  const IngestRing::ReadResult read = ring_->ReadSince(next_seq_, out);
  Batch batch;
  batch.count = read.count;
  batch.missed = read.missed;
  next_seq_ = read.first_seq + read.count;
  missed_total_ += read.missed;
  return batch;
}

}  // namespace rpas::stream
