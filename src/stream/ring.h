#ifndef RPAS_STREAM_RING_H_
#define RPAS_STREAM_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rpas::stream {

/// Fixed-capacity single-producer / multi-consumer broadcast ring for one
/// tenant's workload stream. Every pushed point gets a monotonically
/// increasing sequence number; when the ring is full the oldest points are
/// overwritten (drop-oldest) and `dropped()` counts how many are gone.
/// Consumers never remove points — each reads independently via ReadSince
/// (or the StreamCursor convenience wrapper) and may observe a gap if the
/// producer laps it.
///
/// Concurrency contract: exactly one producer thread calls Push; any number
/// of reader threads call ReadSince / the accessors. Slots are atomics with
/// release stores, so a torn read is impossible; overwrites are detected by
/// re-validating `tail_seq` after the copy (the producer advances the tail
/// *before* overwriting a slot, and the acquire loads of the slots order
/// that tail store before the re-check). A reader racing the producer
/// retries from the advanced tail; each retry strictly raises the start
/// sequence, so the loop is bounded.
class IngestRing {
 public:
  explicit IngestRing(size_t capacity);

  IngestRing(const IngestRing&) = delete;
  IngestRing& operator=(const IngestRing&) = delete;

  /// Appends one point (producer only). Returns its sequence number
  /// (0-based, dense). Overwrites the oldest retained point when full.
  uint64_t Push(double value);

  /// One past the newest sequence (== total points ever pushed).
  uint64_t head_seq() const { return head_.load(std::memory_order_acquire); }
  /// Oldest sequence still retained (== points overwritten so far).
  uint64_t tail_seq() const { return tail_.load(std::memory_order_acquire); }
  /// Points lost to drop-oldest since construction (== tail_seq()).
  uint64_t dropped() const { return tail_seq(); }
  size_t capacity() const { return capacity_; }
  /// Points currently retained (head - tail); racy but never > capacity.
  size_t size() const;

  struct ReadResult {
    /// Sequence of the first value delivered (== the effective read start
    /// when nothing new was available).
    uint64_t first_seq = 0;
    /// Values delivered: sequences [first_seq, first_seq + count).
    size_t count = 0;
    /// Points in [since, first_seq) that were overwritten before this read.
    uint64_t missed = 0;
  };

  /// Copies every retained point with sequence >= `since` into `out`
  /// (appended in sequence order) and reports where the copy actually
  /// started. `out == nullptr` skips the copy and just computes the result
  /// (used by cursors that only need to advance). Safe to call from any
  /// thread concurrently with the producer.
  ReadResult ReadSince(uint64_t since, std::vector<double>* out) const;

 private:
  const size_t capacity_;
  std::vector<std::atomic<double>> slots_;
  std::atomic<uint64_t> head_{0};  ///< next sequence to be written
  std::atomic<uint64_t> tail_{0};  ///< oldest retained sequence
};

/// Per-consumer read position over an IngestRing. Poll() hands back the
/// contiguous "new since my last read" slice (wraparound already flattened
/// by the ring copy) plus the count of points this consumer missed because
/// the producer lapped it.
class StreamCursor {
 public:
  /// The ring must outlive the cursor. A fresh cursor starts at the ring's
  /// current tail, so points already dropped before attach don't count as
  /// missed.
  explicit StreamCursor(const IngestRing* ring);

  struct Batch {
    size_t count = 0;     ///< new points delivered (appended to `out`)
    uint64_t missed = 0;  ///< points skipped over because they were dropped
  };

  /// Appends all points with seq >= next_seq() to `out` (nullptr to advance
  /// without copying) and moves the cursor past them.
  Batch Poll(std::vector<double>* out);

  /// The next sequence this cursor has not yet seen.
  uint64_t next_seq() const { return next_seq_; }
  /// Total points this cursor missed across all polls.
  uint64_t missed_total() const { return missed_total_; }

 private:
  const IngestRing* ring_;
  uint64_t next_seq_;
  uint64_t missed_total_ = 0;
};

}  // namespace rpas::stream

#endif  // RPAS_STREAM_RING_H_
