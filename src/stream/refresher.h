#ifndef RPAS_STREAM_REFRESHER_H_
#define RPAS_STREAM_REFRESHER_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/result.h"
#include "forecast/forecaster.h"
#include "ts/time_series.h"

namespace rpas::stream {

/// What a Refresh() call did to the target model.
enum class RefreshKind {
  kNone = 0,         ///< no new points, nothing to do
  kRecursive,        ///< recursive per-point state update (seasonal, ARIMA)
  kFineTune,         ///< bounded warm-start gradient steps (MLP, DeepAR)
  kResync,           ///< state rebuilt from history after dropped points
  kFullRetrain,      ///< wQL drift guard tripped -> Fit on trailing window
};

const char* RefreshKindToString(RefreshKind kind);

struct RefreshOutcome {
  RefreshKind kind = RefreshKind::kNone;
  /// New points consumed by the update (0 for resync / retrain rounds).
  size_t points = 0;
  /// Gradient steps run (fine-tune and retrain rounds).
  int gradient_steps = 0;
};

/// Cumulative per-refresher accounting, mirrored into the online loop's
/// metrics at end of run.
struct RefreshStats {
  uint64_t refreshes = 0;          ///< Refresh() calls that did work
  uint64_t points_consumed = 0;    ///< new points folded into the model
  uint64_t recursive_updates = 0;  ///< RefreshKind::kRecursive rounds
  uint64_t fine_tunes = 0;         ///< RefreshKind::kFineTune rounds
  uint64_t gradient_steps = 0;     ///< total fine-tune gradient steps
  uint64_t resyncs = 0;            ///< post-drop state rebuilds
  uint64_t full_retrains = 0;      ///< drift-guard (or unsupported-model)
                                   ///< fallbacks to Fit
};

struct RefresherOptions {
  /// Rolling window (in observed-loss samples) for the drift guard. The
  /// first `drift_window` observations form the baseline; afterwards a
  /// rolling mean above `drift_threshold * baseline` schedules a full
  /// retrain at the next Refresh(). 0 disables the guard.
  size_t drift_window = 4;
  double drift_threshold = 2.0;
  /// Trailing points refit on a full retrain; 0 uses the whole history.
  size_t retrain_window = 0;
};

/// Per-forecaster incremental-refresh dispatcher: the streaming consumer
/// hands it the up-to-date history plus how many trailing points are new
/// (and how many the ingest ring dropped), and it keeps the target model's
/// state current at O(new points) cost — falling back to state resync after
/// a drop and to a full Fit when observed forecast quality drifts or the
/// model has no incremental path.
///
/// Dropped-point rule: when the ring dropped points since the last poll,
/// the per-point replay the recursive accumulators rely on is impossible,
/// so the round only rebuilds state from `history` (ResyncState) and defers
/// consuming the new points to the next clean batch — folding them twice is
/// worse than folding them late.
class IncrementalRefresher {
 public:
  /// `target` must outlive the refresher and already be fitted.
  IncrementalRefresher(forecast::Forecaster* target,
                       RefresherOptions options);

  /// Aligns streaming state with `history` before the first Refresh (e.g.
  /// the training prefix of the series). Not counted in stats().
  Status Prime(const ts::TimeSeries& history);

  /// Brings the model up to date with `history`, whose last `new_points`
  /// values are unseen. `dropped` is the number of points lost since the
  /// last call (StreamCursor::Batch::missed).
  Result<RefreshOutcome> Refresh(const ts::TimeSeries& history,
                                 size_t new_points, uint64_t dropped);

  /// Feeds the drift guard one realized forecast-quality sample (e.g. the
  /// prefix wQL of the plan that just expired).
  void ObserveForecastLoss(double wql);

  /// True when the guard has scheduled a full retrain for the next
  /// Refresh().
  bool drift_pending() const { return drift_pending_; }

  const RefreshStats& stats() const { return stats_; }

 private:
  Result<RefreshOutcome> FullRetrain(const ts::TimeSeries& history);

  forecast::Forecaster* target_;  // not owned
  RefresherOptions options_;
  RefreshStats stats_;
  /// Drift guard: baseline mean of the first window, then a rolling window.
  double baseline_loss_sum_ = 0.0;
  size_t baseline_count_ = 0;
  std::deque<double> recent_losses_;
  double recent_loss_sum_ = 0.0;
  bool drift_pending_ = false;
};

}  // namespace rpas::stream

#endif  // RPAS_STREAM_REFRESHER_H_
