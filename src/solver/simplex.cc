#include "solver/simplex.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpas::solver {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau: `rows` constraint rows plus one objective row
/// stored separately; column layout [structural | slack/surplus |
/// artificial | rhs].
struct Tableau {
  std::vector<std::vector<double>> a;  // m x (n_total)
  std::vector<double> rhs;             // m
  std::vector<double> obj;             // reduced costs, n_total
  double obj_value = 0.0;
  std::vector<int> basis;              // basic variable per row
  std::vector<bool> blocked;           // columns barred from entering
  size_t n_total = 0;

  void Pivot(size_t row, size_t col) {
    const double pivot = a[row][col];
    RPAS_DCHECK(std::fabs(pivot) > kEps);
    const double inv = 1.0 / pivot;
    for (double& v : a[row]) {
      v *= inv;
    }
    rhs[row] *= inv;
    for (size_t r = 0; r < a.size(); ++r) {
      if (r == row) {
        continue;
      }
      const double factor = a[r][col];
      if (std::fabs(factor) < kEps) {
        continue;
      }
      for (size_t c = 0; c < n_total; ++c) {
        a[r][c] -= factor * a[row][c];
      }
      rhs[r] -= factor * rhs[row];
    }
    const double obj_factor = obj[col];
    if (std::fabs(obj_factor) > kEps) {
      for (size_t c = 0; c < n_total; ++c) {
        obj[c] -= obj_factor * a[row][c];
      }
      obj_value -= obj_factor * rhs[row];
    }
    basis[row] = static_cast<int>(col);
  }

  /// Runs simplex iterations until optimal/unbounded/iteration cap.
  /// Returns OK / OutOfRange(unbounded) / ResourceExhausted(cap).
  Status Iterate(int max_iterations, int* iterations) {
    for (int it = 0; it < max_iterations; ++it) {
      // Bland's rule: entering = lowest-index column with negative reduced
      // cost.
      int entering = -1;
      for (size_t c = 0; c < n_total; ++c) {
        if (!blocked[c] && obj[c] < -kEps) {
          entering = static_cast<int>(c);
          break;
        }
      }
      if (entering < 0) {
        *iterations += it;
        return Status::OK();
      }
      // Ratio test; ties broken by smallest basis index (Bland).
      int leaving = -1;
      double best_ratio = 0.0;
      for (size_t r = 0; r < a.size(); ++r) {
        const double coef = a[r][static_cast<size_t>(entering)];
        if (coef > kEps) {
          const double ratio = rhs[r] / coef;
          if (leaving < 0 || ratio < best_ratio - kEps ||
              (std::fabs(ratio - best_ratio) <= kEps &&
               basis[r] < basis[static_cast<size_t>(leaving)])) {
            leaving = static_cast<int>(r);
            best_ratio = ratio;
          }
        }
      }
      if (leaving < 0) {
        return Status::OutOfRange("LP is unbounded");
      }
      Pivot(static_cast<size_t>(leaving), static_cast<size_t>(entering));
    }
    return Status::ResourceExhausted("simplex iteration limit reached");
  }
};

}  // namespace

Result<LpSolution> SolveSimplex(const LinearProgram& lp, int max_iterations) {
  const size_t n = lp.num_vars();
  const size_t m = lp.constraints.size();
  if (n == 0) {
    return Status::InvalidArgument("LP has no variables");
  }
  for (const Constraint& c : lp.constraints) {
    if (c.coeffs.size() != n) {
      return Status::InvalidArgument(
          "constraint width does not match objective");
    }
  }

  // Count auxiliary columns.
  size_t num_slack = 0;
  size_t num_artificial = 0;
  for (const Constraint& c : lp.constraints) {
    const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
    Relation rel = c.relation;
    if (sign < 0.0) {
      if (rel == Relation::kLessEqual) {
        rel = Relation::kGreaterEqual;
      } else if (rel == Relation::kGreaterEqual) {
        rel = Relation::kLessEqual;
      }
    }
    switch (rel) {
      case Relation::kLessEqual:
        ++num_slack;
        break;
      case Relation::kGreaterEqual:
        ++num_slack;
        ++num_artificial;
        break;
      case Relation::kEqual:
        ++num_artificial;
        break;
    }
  }

  Tableau t;
  t.n_total = n + num_slack + num_artificial;
  t.a.assign(m, std::vector<double>(t.n_total, 0.0));
  t.rhs.assign(m, 0.0);
  t.basis.assign(m, -1);
  t.blocked.assign(t.n_total, false);

  size_t slack_col = n;
  size_t artificial_col = n + num_slack;
  const size_t first_artificial = artificial_col;
  for (size_t r = 0; r < m; ++r) {
    const Constraint& c = lp.constraints[r];
    const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
    for (size_t j = 0; j < n; ++j) {
      t.a[r][j] = sign * c.coeffs[j];
    }
    t.rhs[r] = sign * c.rhs;
    Relation rel = c.relation;
    if (sign < 0.0) {
      if (rel == Relation::kLessEqual) {
        rel = Relation::kGreaterEqual;
      } else if (rel == Relation::kGreaterEqual) {
        rel = Relation::kLessEqual;
      }
    }
    switch (rel) {
      case Relation::kLessEqual:
        t.a[r][slack_col] = 1.0;
        t.basis[r] = static_cast<int>(slack_col);
        ++slack_col;
        break;
      case Relation::kGreaterEqual:
        t.a[r][slack_col] = -1.0;  // surplus
        ++slack_col;
        t.a[r][artificial_col] = 1.0;
        t.basis[r] = static_cast<int>(artificial_col);
        ++artificial_col;
        break;
      case Relation::kEqual:
        t.a[r][artificial_col] = 1.0;
        t.basis[r] = static_cast<int>(artificial_col);
        ++artificial_col;
        break;
    }
  }

  int iterations = 0;

  // ---- Phase 1: minimize the sum of artificials. ----
  if (num_artificial > 0) {
    t.obj.assign(t.n_total, 0.0);
    for (size_t c = first_artificial; c < t.n_total; ++c) {
      t.obj[c] = 1.0;
    }
    t.obj_value = 0.0;
    // Make reduced costs consistent with the starting basis (price out the
    // basic artificials).
    for (size_t r = 0; r < m; ++r) {
      if (t.basis[r] >= static_cast<int>(first_artificial)) {
        for (size_t c = 0; c < t.n_total; ++c) {
          t.obj[c] -= t.a[r][c];
        }
        t.obj_value -= t.rhs[r];
      }
    }
    RPAS_RETURN_IF_ERROR(t.Iterate(max_iterations, &iterations));
    // obj_value tracks -(current phase-1 objective).
    if (-t.obj_value > 1e-7) {
      return Status::FailedPrecondition("LP is infeasible");
    }
    // Drive any remaining basic artificials out of the basis.
    for (size_t r = 0; r < m; ++r) {
      if (t.basis[r] >= static_cast<int>(first_artificial)) {
        int pivot_col = -1;
        for (size_t c = 0; c < first_artificial; ++c) {
          if (std::fabs(t.a[r][c]) > kEps) {
            pivot_col = static_cast<int>(c);
            break;
          }
        }
        if (pivot_col >= 0) {
          t.Pivot(r, static_cast<size_t>(pivot_col));
        }
        // If the row is all zeros over non-artificials the constraint is
        // redundant; the artificial stays basic at value 0, harmless once
        // blocked from the objective.
      }
    }
    // Bar artificials from ever re-entering.
    for (size_t c = first_artificial; c < t.n_total; ++c) {
      t.blocked[c] = true;
    }
  }

  // ---- Phase 2: original objective. ----
  t.obj.assign(t.n_total, 0.0);
  for (size_t j = 0; j < n; ++j) {
    t.obj[j] = lp.objective[j];
  }
  t.obj_value = 0.0;
  for (size_t r = 0; r < m; ++r) {
    const int b = t.basis[r];
    if (b >= 0 && b < static_cast<int>(n) &&
        std::fabs(lp.objective[static_cast<size_t>(b)]) > 0.0) {
      const double cb = lp.objective[static_cast<size_t>(b)];
      for (size_t c = 0; c < t.n_total; ++c) {
        t.obj[c] -= cb * t.a[r][c];
      }
      t.obj_value -= cb * t.rhs[r];
    }
  }
  RPAS_RETURN_IF_ERROR(t.Iterate(max_iterations, &iterations));

  LpSolution solution;
  solution.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    const int b = t.basis[r];
    if (b >= 0 && b < static_cast<int>(n)) {
      solution.x[static_cast<size_t>(b)] = t.rhs[r];
    }
  }
  double value = 0.0;
  for (size_t j = 0; j < n; ++j) {
    value += lp.objective[j] * solution.x[j];
  }
  solution.objective_value = value;
  solution.iterations = iterations;
  return solution;
}

}  // namespace rpas::solver
