#ifndef RPAS_SOLVER_AUTOSCALING_H_
#define RPAS_SOLVER_AUTOSCALING_H_

#include <vector>

#include "common/result.h"
#include "solver/simplex.h"

namespace rpas::solver {

/// The auto-scaling optimization of paper Definition 3/4/6/7:
///   min sum_t c_t   s.t.  w_t / c_t <= theta_t,  c_t >= min_nodes,
/// where `workloads[t]` is the (possibly quantile-forecast) workload ŵ_t^τ
/// and `thresholds[t]` the per-step utilization threshold θ_t. When every
/// θ_t is identical pass a single-element `thresholds`.
struct AutoScalingProblem {
  std::vector<double> workloads;
  std::vector<double> thresholds;  ///< size 1 (uniform) or workloads.size()
  int min_nodes = 1;               ///< floor on the node count per step
  int max_nodes = 0;               ///< 0 = uncapped; otherwise a hard cap

  /// Threshold applicable at step t.
  double ThresholdAt(size_t t) const;
};

/// Integral allocation: the constraint set is separable per step, so the
/// optimum is c_t = max(min_nodes, ceil(w_t / theta_t)). Returns
/// InvalidArgument on non-positive thresholds or negative workloads;
/// OutOfRange if a cap is given and some step needs more than max_nodes.
Result<std::vector<int>> SolveAutoScalingInteger(
    const AutoScalingProblem& problem);

/// Continuous relaxation solved with the general simplex solver
/// (paper: "solved using standard linear programming solvers"). Exists to
/// mirror the paper's formulation; cross-checked against the closed form.
Result<std::vector<double>> SolveAutoScalingLp(
    const AutoScalingProblem& problem);

/// Builds the explicit LP for the relaxation (exposed for tests).
LinearProgram BuildAutoScalingLp(const AutoScalingProblem& problem);

}  // namespace rpas::solver

#endif  // RPAS_SOLVER_AUTOSCALING_H_
