#include "solver/autoscaling.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace rpas::solver {

double AutoScalingProblem::ThresholdAt(size_t t) const {
  RPAS_CHECK(!thresholds.empty());
  return thresholds.size() == 1 ? thresholds[0] : thresholds[t];
}

namespace {
Status ValidateProblem(const AutoScalingProblem& problem) {
  if (problem.workloads.empty()) {
    return Status::InvalidArgument("auto-scaling problem has no steps");
  }
  if (problem.thresholds.size() != 1 &&
      problem.thresholds.size() != problem.workloads.size()) {
    return Status::InvalidArgument(
        "thresholds must have size 1 or match workloads");
  }
  for (size_t t = 0; t < problem.workloads.size(); ++t) {
    if (problem.ThresholdAt(t) <= 0.0) {
      return Status::InvalidArgument("thresholds must be positive");
    }
    if (problem.workloads[t] < 0.0) {
      return Status::InvalidArgument("workloads must be non-negative");
    }
  }
  if (problem.min_nodes < 0) {
    return Status::InvalidArgument("min_nodes must be >= 0");
  }
  return Status::OK();
}
}  // namespace

Result<std::vector<int>> SolveAutoScalingInteger(
    const AutoScalingProblem& problem) {
  RPAS_RETURN_IF_ERROR(ValidateProblem(problem));
  std::vector<int> allocation(problem.workloads.size());
  for (size_t t = 0; t < problem.workloads.size(); ++t) {
    const double required = problem.workloads[t] / problem.ThresholdAt(t);
    // ceil with a tolerance so w/theta == k does not round to k+1 from
    // floating-point dust.
    int nodes = static_cast<int>(std::ceil(required - 1e-9));
    nodes = std::max(nodes, problem.min_nodes);
    if (problem.max_nodes > 0 && nodes > problem.max_nodes) {
      return Status::OutOfRange(StrFormat(
          "step %zu requires %d nodes, cap is %d", t, nodes,
          problem.max_nodes));
    }
    allocation[t] = nodes;
  }
  return allocation;
}

LinearProgram BuildAutoScalingLp(const AutoScalingProblem& problem) {
  const size_t h = problem.workloads.size();
  LinearProgram lp;
  lp.objective.assign(h, 1.0);
  for (size_t t = 0; t < h; ++t) {
    // w_t / c_t <= theta_t  <=>  c_t >= w_t / theta_t.
    Constraint demand;
    demand.coeffs.assign(h, 0.0);
    demand.coeffs[t] = 1.0;
    demand.relation = Relation::kGreaterEqual;
    demand.rhs = problem.workloads[t] / problem.ThresholdAt(t);
    lp.constraints.push_back(std::move(demand));

    if (problem.min_nodes > 0) {
      Constraint floor;
      floor.coeffs.assign(h, 0.0);
      floor.coeffs[t] = 1.0;
      floor.relation = Relation::kGreaterEqual;
      floor.rhs = static_cast<double>(problem.min_nodes);
      lp.constraints.push_back(std::move(floor));
    }
    if (problem.max_nodes > 0) {
      Constraint cap;
      cap.coeffs.assign(h, 0.0);
      cap.coeffs[t] = 1.0;
      cap.relation = Relation::kLessEqual;
      cap.rhs = static_cast<double>(problem.max_nodes);
      lp.constraints.push_back(std::move(cap));
    }
  }
  return lp;
}

Result<std::vector<double>> SolveAutoScalingLp(
    const AutoScalingProblem& problem) {
  RPAS_RETURN_IF_ERROR(ValidateProblem(problem));
  RPAS_ASSIGN_OR_RETURN(LpSolution solution,
                        SolveSimplex(BuildAutoScalingLp(problem)));
  return solution.x;
}

}  // namespace rpas::solver
