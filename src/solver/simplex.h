#ifndef RPAS_SOLVER_SIMPLEX_H_
#define RPAS_SOLVER_SIMPLEX_H_

#include <vector>

#include "common/result.h"

namespace rpas::solver {

/// Linear-program constraint sense.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: sum_j coeffs[j] * x_j (relation) rhs.
struct Constraint {
  std::vector<double> coeffs;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// A minimization LP over non-negative variables:
///   min objective . x   s.t.  constraints,  x >= 0.
struct LinearProgram {
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  size_t num_vars() const { return objective.size(); }
};

/// LP solution.
struct LpSolution {
  std::vector<double> x;
  double objective_value = 0.0;
  int iterations = 0;
};

/// Solves an LP with the two-phase dense tableau simplex method (Bland's
/// anti-cycling rule). Returns:
///  * FailedPrecondition when the program is infeasible,
///  * OutOfRange when it is unbounded,
///  * InvalidArgument on malformed input (ragged constraints).
///
/// This is the "standard linear programming solver" of paper §III-C used to
/// solve the (deterministic counterpart of the) robust auto-scaling
/// optimization; for the separable auto-scaling LP the specialized solver in
/// autoscaling.h is equivalent and faster, and the two are cross-checked in
/// tests.
Result<LpSolution> SolveSimplex(const LinearProgram& lp,
                                int max_iterations = 10000);

}  // namespace rpas::solver

#endif  // RPAS_SOLVER_SIMPLEX_H_
