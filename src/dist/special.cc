#include "dist/special.h"

#include <cmath>

#include "common/logging.h"

namespace rpas::dist {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  RPAS_CHECK(p > 0.0 && p < 1.0) << "NormalQuantile requires p in (0,1)";
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double Digamma(double x) {
  RPAS_CHECK(x > 0.0) << "Digamma requires x > 0";
  double result = 0.0;
  // Recurrence to push x above 12 for the asymptotic series.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion.
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

double LogBeta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

namespace {

// Continued fraction for the incomplete beta (Numerical-Recipes style
// modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) {
    d = kFpMin;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return h;
}

}  // namespace

double IncompleteBetaRegularized(double a, double b, double x) {
  RPAS_CHECK(a > 0.0 && b > 0.0) << "IncompleteBeta requires a,b > 0";
  if (x <= 0.0) {
    return 0.0;
  }
  if (x >= 1.0) {
    return 1.0;
  }
  const double ln_front =
      a * std::log(x) + b * std::log(1.0 - x) - LogBeta(a, b);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double x, double dof) {
  RPAS_CHECK(dof > 0.0) << "StudentTCdf requires dof > 0";
  if (x == 0.0) {
    return 0.5;
  }
  const double t2 = x * x;
  const double z = dof / (dof + t2);
  const double p = 0.5 * IncompleteBetaRegularized(dof / 2.0, 0.5, z);
  return x > 0.0 ? 1.0 - p : p;
}

double StudentTQuantile(double p, double dof) {
  RPAS_CHECK(p > 0.0 && p < 1.0) << "StudentTQuantile requires p in (0,1)";
  RPAS_CHECK(dof > 0.0);
  if (p == 0.5) {
    return 0.0;
  }
  // Bracket, then bisect. The normal quantile gives a good starting scale.
  double hi = std::max(1.0, std::fabs(NormalQuantile(p)) * 4.0 + 4.0);
  while (StudentTCdf(hi, dof) < p) {
    hi *= 2.0;
    if (hi > 1e12) {
      break;
    }
  }
  double lo = -hi;
  while (StudentTCdf(lo, dof) > p) {
    lo *= 2.0;
    if (lo < -1e12) {
      break;
    }
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, dof) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, std::fabs(hi))) {
      break;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace rpas::dist
