#ifndef RPAS_DIST_EMPIRICAL_H_
#define RPAS_DIST_EMPIRICAL_H_

#include <cstddef>
#include <vector>

#include "dist/distribution.h"

namespace rpas::dist {

/// Empirical distribution over a finite sample. DeepAR's multi-step quantile
/// forecasts are obtained by ancestral sampling of whole trajectories and
/// taking per-step empirical quantiles (paper §III-B: "generate possible
/// forecasts at a desired quantile level, using sampling methods").
class Empirical final : public Distribution {
 public:
  /// Takes ownership of the sample; must be non-empty.
  explicit Empirical(std::vector<double> samples);

  double Mean() const override;
  double Variance() const override;
  /// Log of a kernel-free density is undefined for an empirical sample;
  /// returns the log-pdf of a moment-matched Gaussian as an approximation.
  double LogPdf(double x) const override;
  double Cdf(double x) const override;
  /// Linear-interpolation sample quantile (type-7 / the default in R and
  /// NumPy).
  double Quantile(double p) const override;
  double Sample(Rng* rng) const override;

  size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  double mean_;
  double variance_;
};

}  // namespace rpas::dist

#endif  // RPAS_DIST_EMPIRICAL_H_
