#include "dist/empirical.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpas::dist {

Empirical::Empirical(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  RPAS_CHECK(!sorted_.empty()) << "Empirical needs at least one sample";
  std::sort(sorted_.begin(), sorted_.end());
  double sum = 0.0;
  for (double v : sorted_) {
    sum += v;
  }
  mean_ = sum / static_cast<double>(sorted_.size());
  double ss = 0.0;
  for (double v : sorted_) {
    ss += (v - mean_) * (v - mean_);
  }
  variance_ = sorted_.size() > 1
                  ? ss / static_cast<double>(sorted_.size() - 1)
                  : 0.0;
}

double Empirical::Mean() const { return mean_; }

double Empirical::Variance() const { return variance_; }

double Empirical::LogPdf(double x) const {
  const double sd = std::max(std::sqrt(variance_), 1e-12);
  const double z = (x - mean_) / sd;
  return -0.5 * z * z - std::log(sd) - 0.5 * std::log(2.0 * M_PI);
}

double Empirical::Cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Empirical::Quantile(double p) const {
  RPAS_CHECK(p > 0.0 && p < 1.0) << "Quantile requires p in (0,1)";
  const size_t n = sorted_.size();
  if (n == 1) {
    return sorted_[0];
  }
  const double h = (static_cast<double>(n) - 1.0) * p;
  const size_t lo = static_cast<size_t>(std::floor(h));
  const size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double Empirical::Sample(Rng* rng) const {
  return sorted_[rng->UniformInt(sorted_.size())];
}

}  // namespace rpas::dist
