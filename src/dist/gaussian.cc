#include "dist/gaussian.h"

#include <cmath>

#include "common/logging.h"
#include "dist/special.h"

namespace rpas::dist {

Gaussian::Gaussian(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  RPAS_CHECK(stddev > 0.0) << "Gaussian stddev must be positive";
}

double Gaussian::LogPdf(double x) const {
  const double z = (x - mean_) / stddev_;
  return -0.5 * z * z - std::log(stddev_) - 0.5 * std::log(2.0 * M_PI);
}

double Gaussian::Cdf(double x) const {
  return NormalCdf((x - mean_) / stddev_);
}

double Gaussian::Quantile(double p) const {
  return mean_ + stddev_ * NormalQuantile(p);
}

double Gaussian::Sample(Rng* rng) const {
  return rng->Normal(mean_, stddev_);
}

}  // namespace rpas::dist
