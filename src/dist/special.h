#ifndef RPAS_DIST_SPECIAL_H_
#define RPAS_DIST_SPECIAL_H_

namespace rpas::dist {

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-12 over (0, 1)). p must be in (0, 1).
double NormalQuantile(double p);

/// Digamma function psi(x) for x > 0 (recurrence + asymptotic series).
double Digamma(double x);

/// log Beta(a, b) for a, b > 0.
double LogBeta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1],
/// a, b > 0 (Lentz continued fraction).
double IncompleteBetaRegularized(double a, double b, double x);

/// CDF of the (standard) Student-t distribution with `dof` degrees of
/// freedom.
double StudentTCdf(double x, double dof);

/// Inverse CDF of the standard Student-t distribution (bisection +
/// Newton polish on StudentTCdf). p in (0, 1), dof > 0.
double StudentTQuantile(double p, double dof);

}  // namespace rpas::dist

#endif  // RPAS_DIST_SPECIAL_H_
