#ifndef RPAS_DIST_GAUSSIAN_H_
#define RPAS_DIST_GAUSSIAN_H_

#include "dist/distribution.h"

namespace rpas::dist {

/// Normal distribution N(mean, stddev^2). The output head of the
/// probabilistic MLP forecaster (paper §III-B Figure 3a).
class Gaussian final : public Distribution {
 public:
  /// stddev must be > 0.
  Gaussian(double mean, double stddev);

  double Mean() const override { return mean_; }
  double Variance() const override { return stddev_ * stddev_; }
  double Stddev() const { return stddev_; }
  double LogPdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng* rng) const override;

 private:
  double mean_;
  double stddev_;
};

}  // namespace rpas::dist

#endif  // RPAS_DIST_GAUSSIAN_H_
