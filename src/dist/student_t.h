#ifndef RPAS_DIST_STUDENT_T_H_
#define RPAS_DIST_STUDENT_T_H_

#include "dist/distribution.h"

namespace rpas::dist {

/// Location-scale Student-t distribution t_nu(location, scale). The paper
/// chooses Student-t as the DeepAR output head because its longer tails
/// absorb workload outliers and noise better than a Gaussian (§III-B).
class StudentT final : public Distribution {
 public:
  /// scale > 0, dof > 0. Mean exists for dof > 1; variance for dof > 2.
  StudentT(double location, double scale, double dof);

  /// Location parameter; equals the mean when dof > 1.
  double Mean() const override { return location_; }
  /// Variance scale^2 * dof/(dof-2) for dof > 2; +inf otherwise.
  double Variance() const override;
  double Scale() const { return scale_; }
  double Dof() const { return dof_; }
  double LogPdf(double x) const override;
  double Cdf(double x) const override;
  /// Inverse CDF. Accepts the closed interval [0, 1]: the exact endpoints
  /// are clamped to a far tail (p = 1e-12 / 1 - 1e-12) rather than
  /// aborting, so quantile-grid sweeps that touch 0 or 1 stay finite.
  double Quantile(double p) const override;
  double Sample(Rng* rng) const override;

 private:
  double location_;
  double scale_;
  double dof_;
};

}  // namespace rpas::dist

#endif  // RPAS_DIST_STUDENT_T_H_
