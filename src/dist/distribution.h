#ifndef RPAS_DIST_DISTRIBUTION_H_
#define RPAS_DIST_DISTRIBUTION_H_

#include "common/rng.h"

namespace rpas::dist {

/// Univariate continuous probability distribution. The probabilistic
/// forecasters (paper §III-B, "learn parametric distributions") emit one
/// Distribution per future time step; the robust auto-scaling manager
/// consumes its Quantile() as the workload upper bound ŵ^τ.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual double Mean() const = 0;
  virtual double Variance() const = 0;
  virtual double LogPdf(double x) const = 0;
  virtual double Cdf(double x) const = 0;
  /// Inverse CDF; p must lie in (0, 1).
  virtual double Quantile(double p) const = 0;
  virtual double Sample(Rng* rng) const = 0;
};

}  // namespace rpas::dist

#endif  // RPAS_DIST_DISTRIBUTION_H_
