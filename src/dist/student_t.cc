#include "dist/student_t.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "dist/special.h"

namespace rpas::dist {

StudentT::StudentT(double location, double scale, double dof)
    : location_(location), scale_(scale), dof_(dof) {
  RPAS_CHECK(scale > 0.0) << "StudentT scale must be positive";
  RPAS_CHECK(dof > 0.0) << "StudentT dof must be positive";
}

double StudentT::Variance() const {
  if (dof_ <= 2.0) {
    return std::numeric_limits<double>::infinity();
  }
  return scale_ * scale_ * dof_ / (dof_ - 2.0);
}

double StudentT::LogPdf(double x) const {
  const double z = (x - location_) / scale_;
  return std::lgamma((dof_ + 1.0) / 2.0) - std::lgamma(dof_ / 2.0) -
         0.5 * std::log(dof_ * M_PI) - std::log(scale_) -
         (dof_ + 1.0) / 2.0 * std::log1p(z * z / dof_);
}

double StudentT::Cdf(double x) const {
  return StudentTCdf((x - location_) / scale_, dof_);
}

double StudentT::Quantile(double p) const {
  // Callers sweep quantile grids that can legitimately touch the endpoints
  // (e.g. tau = 1.0 meaning "the most conservative allocation we model").
  // The exact endpoints have infinite quantiles, so clamp to a far tail
  // instead of aborting in StudentTQuantile's (0,1) precondition check.
  constexpr double kTailEps = 1e-12;
  RPAS_CHECK(p >= 0.0 && p <= 1.0) << "StudentT::Quantile requires p in [0,1]";
  const double clamped = std::min(1.0 - kTailEps, std::max(kTailEps, p));
  return location_ + scale_ * StudentTQuantile(clamped, dof_);
}

double StudentT::Sample(Rng* rng) const {
  return location_ + scale_ * rng->StudentT(dof_);
}

}  // namespace rpas::dist
