#ifndef RPAS_TRACE_GENERATOR_H_
#define RPAS_TRACE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "ts/time_series.h"

namespace rpas::trace {

/// Statistical profile of a synthetic cluster workload trace. The defaults
/// are neutral; use AlibabaProfile() / GoogleProfile() for the two
/// dataset stand-ins used throughout the benches (see DESIGN.md §3 for the
/// substitution rationale: the real Alibaba/Google traces are multi-GB
/// downloads, and the paper's experiments depend only on their statistical
/// shape).
struct TraceProfile {
  std::string name = "synthetic";
  size_t num_machines = 24;     ///< machines sampled and aggregated
  double step_minutes = 10.0;   ///< paper aggregates at 10-minute intervals
  double base_load = 4.0;       ///< mean per-machine load (cores)
  double base_spread = 0.3;     ///< machine-to-machine base variation
  double diurnal_amplitude = 3.0;   ///< daily-cycle swing per machine
  double diurnal_peakiness = 1.6;   ///< >1 sharpens the daily peak
  double weekend_factor = 0.7;      ///< weekend load multiplier
  double ar_coeff = 0.8;            ///< AR(1) noise persistence
  double noise_stddev = 0.35;       ///< AR(1) innovation stddev per machine
  double burst_rate = 0.004;        ///< burst arrivals per machine per step
  double burst_magnitude = 2.5;     ///< Pareto scale of burst height
  double burst_pareto_alpha = 1.8;  ///< Pareto tail (smaller = heavier)
  double burst_mean_duration = 6.0; ///< geometric mean burst length (steps)
  double trend_per_day = 0.0;       ///< linear drift of base load per day
  double machine_capacity = 16.0;   ///< per-machine load ceiling (cores)

  // Cluster-wide (correlated) components applied to the aggregate.
  // Independent per-machine noise averages out across machines, so the
  // aggregate's unpredictability is governed by these shared terms —
  // synchronized task waves and cluster-level bursts.
  double cluster_noise_stddev = 0.0;   ///< shared AR(1) innovation stddev,
                                       ///< as a fraction of the mean load
  double cluster_ar_coeff = 0.9;       ///< persistence of the shared noise
  /// Diurnal modulation of the shared noise amplitude in [0, 1]: 0 keeps
  /// the noise homoskedastic, 1 makes busy hours far noisier than quiet
  /// ones. Production traces are heteroskedastic — volatility grows with
  /// load — which is what makes forecast uncertainty informative
  /// (paper Fig. 6).
  double cluster_noise_diurnal = 0.0;
  double cluster_burst_rate = 0.0;     ///< shared burst arrivals per step
  double cluster_burst_magnitude = 0.1;  ///< Pareto scale, fraction of mean
  double cluster_burst_pareto_alpha = 1.8;
  double cluster_burst_mean_duration = 6.0;
};

/// Alibaba-cluster-trace-like profile: strong, peaky diurnal cycle, clear
/// weekday/weekend contrast, moderate noise and occasional bursts — the
/// regime where all forecasters in the paper's Table I do comparatively
/// well (mean_wQL in the 1e-3..1e-2 range for the neural models).
TraceProfile AlibabaProfile();

/// Google-cluster-trace-like profile: weaker seasonality, much stronger
/// burstiness and dispersion — the regime where every model's error is an
/// order of magnitude worse (paper Table I).
TraceProfile GoogleProfile();

/// Resource-usage traces produced by one generator run (the paper
/// aggregates CPU, memory and disk for Alibaba; CPU and memory for Google).
struct ResourceTrace {
  ts::TimeSeries cpu;
  ts::TimeSeries memory;
  ts::TimeSeries disk;
};

/// Deterministic synthetic cluster-trace generator: simulates per-machine
/// load (diurnal + weekly cycles, AR(1) noise, Pareto bursts, drift),
/// aggregates across machines, and derives correlated memory/disk series.
class SyntheticTraceGenerator {
 public:
  SyntheticTraceGenerator(TraceProfile profile, uint64_t seed);

  /// Generates `num_steps` aggregated steps.
  ResourceTrace Generate(size_t num_steps) const;

  /// Convenience: only the CPU series (the scaling metric used throughout
  /// the paper's evaluation).
  ts::TimeSeries GenerateCpu(size_t num_steps) const;

  const TraceProfile& profile() const { return profile_; }

 private:
  TraceProfile profile_;
  uint64_t seed_;
};

}  // namespace rpas::trace

#endif  // RPAS_TRACE_GENERATOR_H_
