#include "trace/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace rpas::trace {

TraceProfile AlibabaProfile() {
  TraceProfile p;
  p.name = "alibaba";
  p.num_machines = 24;
  // High base relative to variation: the aggregated production CPU series
  // is smooth, so relative (wQL) errors on it are small — the regime of
  // the paper's Table I Alibaba column.
  p.base_load = 8.0;
  p.base_spread = 0.2;
  p.diurnal_amplitude = 1.6;
  p.diurnal_peakiness = 1.6;
  p.weekend_factor = 0.85;
  p.ar_coeff = 0.7;
  p.noise_stddev = 0.2;
  p.burst_rate = 0.002;
  p.burst_magnitude = 1.5;
  p.burst_pareto_alpha = 2.5;
  p.burst_mean_duration = 4.0;
  p.trend_per_day = 0.01;
  p.cluster_noise_stddev = 0.008;
  p.cluster_ar_coeff = 0.8;
  p.cluster_burst_rate = 0.002;
  p.cluster_burst_magnitude = 0.03;
  p.cluster_burst_pareto_alpha = 2.5;
  return p;
}

TraceProfile GoogleProfile() {
  TraceProfile p;
  p.name = "google";
  p.num_machines = 24;
  p.base_load = 3.0;
  p.base_spread = 0.6;
  p.diurnal_amplitude = 1.0;   // much weaker daily cycle
  p.diurnal_peakiness = 1.2;
  p.weekend_factor = 0.95;     // weak weekly effect
  p.ar_coeff = 0.9;            // long-memory noise
  p.noise_stddev = 0.8;        // high per-machine dispersion
  p.burst_rate = 0.012;        // frequent bursts
  p.burst_magnitude = 3.5;
  p.burst_pareto_alpha = 1.5;  // heavy tail
  p.burst_mean_duration = 8.0;
  p.trend_per_day = 0.0;
  // Strong correlated components: synchronized task waves dominate the
  // aggregate, making the trace an order of magnitude harder to forecast
  // (the paper's Table I Google column).
  p.cluster_noise_stddev = 0.07;
  p.cluster_ar_coeff = 0.85;
  p.cluster_noise_diurnal = 1.0;  // busy hours are markedly noisier
  p.cluster_burst_rate = 0.04;
  p.cluster_burst_magnitude = 0.15;
  p.cluster_burst_pareto_alpha = 1.6;
  p.cluster_burst_mean_duration = 10.0;
  return p;
}

SyntheticTraceGenerator::SyntheticTraceGenerator(TraceProfile profile,
                                                 uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {
  RPAS_CHECK(profile_.num_machines > 0);
  RPAS_CHECK(profile_.step_minutes > 0.0);
}

ResourceTrace SyntheticTraceGenerator::Generate(size_t num_steps) const {
  const TraceProfile& p = profile_;
  const double steps_per_day = 24.0 * 60.0 / p.step_minutes;
  const double steps_per_week = 7.0 * steps_per_day;

  Rng master(seed_);
  std::vector<double> cpu_total(num_steps, 0.0);

  for (size_t machine = 0; machine < p.num_machines; ++machine) {
    Rng rng = master.Fork(machine + 1);
    const double base =
        p.base_load * (1.0 + p.base_spread * rng.Normal());
    const double amplitude =
        p.diurnal_amplitude * (1.0 + 0.3 * rng.Normal());
    const double phase = rng.Uniform(0.0, 0.15);  // offset peak slightly
    double ar_state = 0.0;
    double burst_remaining = 0.0;
    double burst_height = 0.0;

    for (size_t t = 0; t < num_steps; ++t) {
      const double day_pos =
          std::fmod(static_cast<double>(t) / steps_per_day + phase, 1.0);
      // Peaky diurnal shape in [0, 1]: raised cosine sharpened by an
      // exponent, peaking mid-day.
      const double raised =
          0.5 * (1.0 - std::cos(2.0 * M_PI * day_pos));
      const double diurnal = std::pow(raised, p.diurnal_peakiness);

      const double week_pos =
          std::fmod(static_cast<double>(t) / steps_per_week, 1.0);
      const bool weekend = week_pos >= 5.0 / 7.0;
      const double week_factor = weekend ? p.weekend_factor : 1.0;

      ar_state = p.ar_coeff * ar_state +
                 rng.Normal(0.0, p.noise_stddev);

      if (burst_remaining <= 0.0 && rng.Bernoulli(p.burst_rate)) {
        burst_remaining =
            1.0 + rng.Exponential(1.0 / p.burst_mean_duration);
        burst_height =
            rng.Pareto(p.burst_magnitude, p.burst_pareto_alpha) -
            p.burst_magnitude;
      }
      double burst = 0.0;
      if (burst_remaining > 0.0) {
        burst = burst_height;
        burst_remaining -= 1.0;
      }

      const double trend = p.trend_per_day *
                           (static_cast<double>(t) / steps_per_day);
      double load =
          week_factor * (base + amplitude * diurnal) + ar_state + burst +
          trend;
      load = std::clamp(load, 0.0, p.machine_capacity);
      cpu_total[t] += load;
    }
  }

  // Cluster-wide correlated components: a shared AR(1) "task wave" and
  // shared Pareto bursts, both scaled by the mean aggregate load so the
  // profiles control *relative* unpredictability.
  if (p.cluster_noise_stddev > 0.0 || p.cluster_burst_rate > 0.0) {
    double mean_load = 0.0;
    for (double v : cpu_total) {
      mean_load += v;
    }
    mean_load /= std::max<size_t>(num_steps, 1);
    Rng cluster_rng = master.Fork(0xC1u);
    double ar_state = 0.0;
    double burst_remaining = 0.0;
    double burst_height = 0.0;
    for (size_t t = 0; t < num_steps; ++t) {
      // Heteroskedastic innovations: busy hours are noisier (volatility
      // scales with the diurnal cycle when cluster_noise_diurnal > 0).
      const double day_pos =
          std::fmod(static_cast<double>(t) / steps_per_day, 1.0);
      const double diurnal =
          0.5 * (1.0 - std::cos(2.0 * M_PI * day_pos));
      const double noise_scale =
          (1.0 - p.cluster_noise_diurnal) + p.cluster_noise_diurnal *
                                                (0.25 + 1.5 * diurnal);
      ar_state = p.cluster_ar_coeff * ar_state +
                 cluster_rng.Normal(0.0, p.cluster_noise_stddev * mean_load *
                                             noise_scale);
      if (burst_remaining <= 0.0 &&
          cluster_rng.Bernoulli(p.cluster_burst_rate)) {
        burst_remaining =
            1.0 + cluster_rng.Exponential(1.0 / p.cluster_burst_mean_duration);
        const double scale = p.cluster_burst_magnitude * mean_load;
        burst_height =
            cluster_rng.Pareto(scale, p.cluster_burst_pareto_alpha) - scale;
      }
      double burst = 0.0;
      if (burst_remaining > 0.0) {
        burst = burst_height;
        burst_remaining -= 1.0;
      }
      cpu_total[t] = std::max(0.0, cpu_total[t] + ar_state + burst);
    }
  }

  ResourceTrace trace;
  trace.cpu.values = cpu_total;
  trace.cpu.step_minutes = p.step_minutes;
  trace.cpu.name = p.name + "-cpu";

  // Memory tracks CPU with a smoother response (leaky integrator) and a
  // higher floor; disk activity is spikier (CPU changes plus extra noise).
  Rng aux = master.Fork(0x517eull);
  trace.memory.values.resize(num_steps);
  trace.disk.values.resize(num_steps);
  double mem_state =
      cpu_total.empty() ? 0.0 : cpu_total[0] * 1.5;
  for (size_t t = 0; t < num_steps; ++t) {
    mem_state = 0.92 * mem_state + 0.08 * (1.5 * cpu_total[t]);
    trace.memory.values[t] =
        mem_state + 0.4 * p.base_load * static_cast<double>(p.num_machines) *
                        0.1 * aux.Uniform();
    const double delta =
        t > 0 ? std::fabs(cpu_total[t] - cpu_total[t - 1]) : 0.0;
    trace.disk.values[t] =
        0.5 * delta + aux.Exponential(1.0) * 0.2 * p.base_load;
  }
  trace.memory.step_minutes = p.step_minutes;
  trace.memory.name = p.name + "-memory";
  trace.disk.step_minutes = p.step_minutes;
  trace.disk.name = p.name + "-disk";
  return trace;
}

ts::TimeSeries SyntheticTraceGenerator::GenerateCpu(size_t num_steps) const {
  return Generate(num_steps).cpu;
}

}  // namespace rpas::trace
