#ifndef RPAS_COMMON_RESULT_H_
#define RPAS_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace rpas {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent (StatusOr-style). Accessing the value of an errored Result is a
/// programming error and aborts.
///
/// Usage:
///   Result<Matrix> m = LoadMatrix(path);
///   if (!m.ok()) return m.status();
///   Use(m.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the success path reads naturally:
  /// `return my_matrix;`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status (`return
  /// Status::InvalidArgument(...)`). Constructing from an OK status is a
  /// programming error and aborts.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    RPAS_CHECK(!std::get<Status>(data_).ok())
        << "Result<T> constructed from OK status without a value";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the contained status; OK when a value is present.
  Status status() const {
    if (ok()) {
      return Status::OK();
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    RPAS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    RPAS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    RPAS_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Evaluates `rexpr` (a Result<T>), propagating an error Status to the
/// caller, otherwise binding the value to `lhs`.
#define RPAS_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  RPAS_ASSIGN_OR_RETURN_IMPL_(                                  \
      RPAS_MACRO_CONCAT_(rpas_result_, __LINE__), lhs, rexpr)

#define RPAS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define RPAS_MACRO_CONCAT_INNER_(a, b) a##b
#define RPAS_MACRO_CONCAT_(a, b) RPAS_MACRO_CONCAT_INNER_(a, b)

}  // namespace rpas

#endif  // RPAS_COMMON_RESULT_H_
