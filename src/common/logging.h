#ifndef RPAS_COMMON_LOGGING_H_
#define RPAS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rpas {

/// Log severity levels, ordered by importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level emitted by RPAS_LOG. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (with level prefix) on
/// destruction. Created by the RPAS_LOG macro; not used directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after flushing. Used by RPAS_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows a streamed expression when a check passes; enables the
/// `RPAS_CHECK(x) << "msg"` syntax with zero cost on the success path.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace rpas

/// Streams one log line at the given level:
///   RPAS_LOG(kInfo) << "trained " << n << " epochs";
#define RPAS_LOG(level)                                             \
  if (::rpas::LogLevel::level < ::rpas::GetLogLevel()) {            \
  } else                                                            \
    ::rpas::internal::LogMessage(::rpas::LogLevel::level, __FILE__, \
                                 __LINE__)                          \
        .stream()

/// Aborts with a diagnostic when `condition` is false. Active in all build
/// modes: these guard programming errors, not data errors (data errors
/// return Status).
#define RPAS_CHECK(condition)                                              \
  if (condition) {                                                         \
  } else /* NOLINT */                                                      \
    ::rpas::internal::FatalLogMessage(__FILE__, __LINE__, #condition)      \
        .stream()

#define RPAS_DCHECK(condition) RPAS_CHECK(condition)

#endif  // RPAS_COMMON_LOGGING_H_
