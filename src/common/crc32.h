#ifndef RPAS_COMMON_CRC32_H_
#define RPAS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rpas {

/// CRC-32/IEEE (the zlib/PNG polynomial, reflected form). Used by the
/// rpasq.v1 checkpoint format to detect bit-flipped headers and payloads.
///
/// `seed` chains incremental computation: Crc32(b, nb, Crc32(a, na)) equals
/// Crc32 over the concatenation a||b, so large payloads can be checksummed
/// section by section.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace rpas

#endif  // RPAS_COMMON_CRC32_H_
