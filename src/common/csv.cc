#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace rpas {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  CsvTable table;
  std::string line;
  bool first = true;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (StrTrim(line).empty()) {
      continue;
    }
    std::vector<std::string> fields = StrSplit(line, ',');
    for (auto& f : fields) {
      f = std::string(StrTrim(f));
    }
    if (first) {
      table.header = std::move(fields);
      first = false;
      continue;
    }
    if (fields.size() != table.header.size()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: row has %zu fields, header has %zu", path.c_str(),
                    line_number, fields.size(), table.header.size()));
    }
    table.rows.push_back(std::move(fields));
  }
  if (first) {
    return Status::InvalidArgument("'" + path + "' is empty (no header row)");
  }
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out << ',';
      }
      out << row[i];
    }
    out << '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      return Status::InvalidArgument("ragged row in CsvTable");
    }
    write_row(row);
  }
  out.flush();
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<std::vector<double>> CsvNumericColumn(const CsvTable& table,
                                             const std::string& column) {
  const int idx = table.ColumnIndex(column);
  if (idx < 0) {
    return Status::NotFound("no column named '" + column + "'");
  }
  std::vector<double> values;
  values.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    RPAS_ASSIGN_OR_RETURN(double v, ParseDouble(row[idx]));
    values.push_back(v);
  }
  return values;
}

}  // namespace rpas
