#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace rpas {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<std::vector<std::string>> SplitCsvRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;       // inside "..." right now
  bool was_quoted = false;   // this field used quoting (skip trimming)
  size_t i = 0;
  const size_t n = line.size();
  while (i < n) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < n && line[i + 1] == '"') {
          field.push_back('"');  // "" escape inside a quoted field
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        // Only a comma (or end of line) may follow a closing quote.
        if (i < n && line[i] != ',') {
          return Status::InvalidArgument(StrFormat(
              "unexpected character '%c' after closing quote at column %zu",
              line[i], i + 1));
        }
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && StrTrim(field).empty()) {
      quoted = true;
      was_quoted = true;
      field.clear();  // drop any whitespace before the opening quote
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(was_quoted ? field : std::string(StrTrim(field)));
      field.clear();
      was_quoted = false;
      ++i;
      continue;
    }
    field.push_back(c);
    ++i;
  }
  if (quoted) {
    return Status::InvalidArgument("unterminated quote in CSV record");
  }
  fields.push_back(was_quoted ? field : std::string(StrTrim(field)));
  return fields;
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  CsvTable table;
  std::string line;
  bool first = true;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (StrTrim(line).empty()) {
      continue;
    }
    Result<std::vector<std::string>> parsed = SplitCsvRecord(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: %s", path.c_str(), line_number,
                    parsed.status().message().c_str()));
    }
    std::vector<std::string> fields = std::move(*parsed);
    if (first) {
      table.header = std::move(fields);
      first = false;
      continue;
    }
    if (fields.size() != table.header.size()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: row has %zu fields, header has %zu", path.c_str(),
                    line_number, fields.size(), table.header.size()));
    }
    table.rows.push_back(std::move(fields));
  }
  if (first) {
    return Status::InvalidArgument("'" + path + "' is empty (no header row)");
  }
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  auto write_field = [&out](const std::string& field) {
    const bool needs_quoting =
        field.find_first_of(",\"\r\n") != std::string::npos ||
        (!field.empty() && (StrTrim(field).size() != field.size()));
    if (!needs_quoting) {
      out << field;
      return;
    }
    out << '"';
    for (char c : field) {
      if (c == '"') {
        out << '"';
      }
      out << c;
    }
    out << '"';
  };
  auto write_row = [&write_field, &out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out << ',';
      }
      write_field(row[i]);
    }
    out << '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      return Status::InvalidArgument("ragged row in CsvTable");
    }
    write_row(row);
  }
  out.flush();
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<std::vector<double>> CsvNumericColumn(const CsvTable& table,
                                             const std::string& column) {
  const int idx = table.ColumnIndex(column);
  if (idx < 0) {
    return Status::NotFound("no column named '" + column + "'");
  }
  std::vector<double> values;
  values.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    RPAS_ASSIGN_OR_RETURN(double v, ParseDouble(row[idx]));
    values.push_back(v);
  }
  return values;
}

}  // namespace rpas
