#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/logging.h"

namespace rpas {

namespace {

// Set while a thread is executing inside ThreadPool::WorkerLoop. Nested
// ParallelFor calls detect it and run serially instead of blocking a pool
// worker on work that needs pool workers to make progress.
thread_local bool tls_in_pool_worker = false;

std::atomic<int> g_thread_override{0};

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int DefaultThreads() {
  const int fallback = HardwareThreads();
  if (const char* env = std::getenv("RPAS_NUM_THREADS")) {
    const int parsed = ParseThreadCount(env, -1);
    if (parsed < 0) {
      RPAS_LOG(kWarning) << "ignoring invalid RPAS_NUM_THREADS=\"" << env
                         << "\" (want an integer in [1, " << kMaxRpasThreads
                         << "]); using hardware concurrency " << fallback;
      return fallback;
    }
    return parsed;
  }
  return fallback;
}

}  // namespace

int ParseThreadCount(const char* text, int fallback) {
  if (text == nullptr || *text == '\0') {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  // The whole token must be the number: "8x" or "2,4" silently becoming 8
  // or 2 hides a misconfigured deployment. Range errors (errno == ERANGE)
  // and non-positive counts are rejected the same way; values above the
  // cap are clamped rather than rejected (the intent — "as many threads as
  // possible" — is clear).
  if (end == text || *end != '\0' || errno == ERANGE || parsed < 1) {
    return fallback;
  }
  return static_cast<int>(std::min<long>(parsed, kMaxRpasThreads));
}

int RpasThreads() {
  const int override_threads = g_thread_override.load(std::memory_order_relaxed);
  if (override_threads > 0) {
    return override_threads;
  }
  // The environment is read once; later changes go through SetRpasThreads.
  static const int default_threads = DefaultThreads();
  return default_threads;
}

void SetRpasThreads(int num_threads) {
  g_thread_override.store(std::max(num_threads, 0),
                          std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads) {
  EnsureThreads(num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  RPAS_CHECK(task != nullptr) << "ThreadPool::Submit: empty task";
  {
    std::lock_guard<std::mutex> lock(mu_);
    RPAS_CHECK(!shutdown_) << "ThreadPool::Submit after shutdown";
    // Counted before the task becomes visible to workers: a task can only
    // execute after the push below, so tasks_executed <= tasks_submitted
    // holds in every GetStats() snapshot (the monotonic invariant the
    // rpas_obs pool gauges export).
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(std::move(task));
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::EnsureThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(0);  // leaked: outlives statics
  return *pool;
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    // Release pairs with GetStats()'s acquire load: a reader that sees
    // this increment also sees the submission increment that preceded it
    // (ordered by the queue mutex), keeping executed <= submitted in
    // every snapshot.
    tasks_executed_.fetch_add(1, std::memory_order_release);
  }
}

ThreadPool::Stats ThreadPool::GetStats() const {
  Stats stats;
  // Executed is read before submitted: every execution is preceded by its
  // submission, so this order (with acquire pairing the worker's release
  // increment) can never observe tasks_executed > tasks_submitted even
  // while tasks are in flight between the two loads.
  stats.tasks_executed = tasks_executed_.load(std::memory_order_acquire);
  stats.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
    stats.max_queue_depth = max_queue_depth_;
    stats.threads = static_cast<int>(workers_.size());
  }
  return stats;
}

namespace {

// State shared between the caller and the helper tasks of one ParallelFor.
// Completion is tracked per *chunk*, not per helper: the caller claims
// chunks itself, so it never waits on a helper that is still queued behind
// unrelated pool work. Helpers hold the state via shared_ptr — one that is
// scheduled after the call already returned finds no chunks left (or the
// failure flag set) and exits without touching `fn`.
struct ParallelForState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};
  size_t num_chunks = 0;

  std::mutex mu;
  std::condition_variable done_cv;
  size_t done_chunks = 0;   // chunks whose fn finished (or threw)
  size_t executing = 0;     // workers currently inside fn
  bool failed = false;
  std::exception_ptr first_exception;

  void RunWorker() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (failed) {
          return;  // abandon remaining chunks after a failure
        }
        ++executing;
      }
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        --executing;
        if (Done()) {
          done_cv.notify_all();  // a waiter may have seen executing > 0
        }
        return;
      }
      const size_t chunk_begin = begin + chunk * grain;
      const size_t chunk_end = std::min(chunk_begin + grain, end);
      std::exception_ptr error;
      try {
        (*fn)(chunk_begin, chunk_end);
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        --executing;
        ++done_chunks;
        if (error != nullptr && !failed) {
          failed = true;
          first_exception = error;
        }
        if (Done()) {
          done_cv.notify_all();
        }
      }
    }
  }

  // Caller may return once no fn is executing and either every chunk ran
  // or a failure abandoned the rest. Must hold mu.
  bool Done() const {
    return executing == 0 && (failed || done_chunks == num_chunks);
  }
};

}  // namespace

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  if (grain == 0) {
    grain = 1;
  }
  const size_t range = end - begin;
  const size_t num_chunks = (range + grain - 1) / grain;
  const size_t threads = std::min(
      static_cast<size_t>(RpasThreads()), num_chunks);

  if (threads <= 1 || tls_in_pool_worker) {
    // Serial path: same chunking as the parallel path so `fn` observes
    // identical subranges regardless of the thread count.
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t chunk_begin = begin + chunk * grain;
      fn(chunk_begin, std::min(chunk_begin + grain, end));
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->fn = &fn;
  state->num_chunks = num_chunks;

  ThreadPool& pool = ThreadPool::Shared();
  pool.EnsureThreads(static_cast<int>(threads) - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    pool.Submit([state] { state->RunWorker(); });
  }
  state->RunWorker();  // the caller participates and claims chunks itself

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->Done(); });
  if (state->first_exception != nullptr) {
    std::rethrow_exception(state->first_exception);
  }
}

}  // namespace rpas
