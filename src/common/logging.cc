#include "common/logging.h"

#include <atomic>

namespace rpas {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kError) {
    std::cerr.flush();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::cerr.flush();
  std::abort();
}

}  // namespace internal
}  // namespace rpas
