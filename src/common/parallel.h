#ifndef RPAS_COMMON_PARALLEL_H_
#define RPAS_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rpas {

/// Number of worker threads RPAS parallel kernels may use. Resolution
/// order: SetRpasThreads() override > RPAS_NUM_THREADS environment
/// variable > hardware concurrency. Always >= 1; a value of 1 forces every
/// parallel construct down its serial path.
int RpasThreads();

/// Largest thread count RPAS_NUM_THREADS / ParseThreadCount will yield.
/// Oversubscription beyond this is never useful and huge values would
/// make the shared pool spawn unbounded workers.
inline constexpr int kMaxRpasThreads = 256;

/// Strict parser for thread-count configuration strings (the
/// RPAS_NUM_THREADS format). Accepts a base-10 integer that consumes the
/// whole token and is >= 1, clamping to kMaxRpasThreads; anything else —
/// empty string, trailing garbage ("8x"), zero/negative values, numbers
/// that overflow long — returns `fallback`. Pure function, no logging;
/// DefaultThreads() adds the warning when it rejects an environment value.
int ParseThreadCount(const char* text, int fallback);

/// Process-wide thread-count override for tests and benchmarks that
/// compare serial and parallel execution in one process. Pass 0 to restore
/// the environment/hardware default. Values < 0 are treated as 0.
void SetRpasThreads(int num_threads);

/// Work-queue thread pool. Workers are started in the constructor and
/// joined in the destructor after draining the queue. Tasks must not
/// throw — ParallelFor wraps user callbacks and captures their exceptions
/// before they reach the pool.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Grows the pool to at least `num_threads` workers (never shrinks).
  void EnsureThreads(int num_threads);

  int num_threads() const;

  /// Scheduling statistics, maintained with cheap atomics on the submit /
  /// execute paths. These describe scheduling, not work semantics — task
  /// counts and queue depths depend on the thread count, so observability
  /// exports treat them as non-deterministic (see obs/metrics.h).
  struct Stats {
    uint64_t tasks_submitted = 0;
    uint64_t tasks_executed = 0;
    size_t queue_depth = 0;      ///< tasks currently waiting
    size_t max_queue_depth = 0;  ///< high-water mark since construction
    int threads = 0;
  };
  Stats GetStats() const;

  /// The process-wide pool used by ParallelFor. Created on first use and
  /// resized on demand to serve RpasThreads() - 1 concurrent helpers (the
  /// calling thread always participates in the work).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  size_t max_queue_depth_ = 0;  // guarded by mu_
};

/// Splits [begin, end) into consecutive chunks of at most `grain`
/// iterations and runs `fn(chunk_begin, chunk_end)` for every chunk,
/// fanning chunks across the shared thread pool. Blocks until all chunks
/// have finished.
///
/// Determinism contract: the partition depends only on (begin, end,
/// grain) — never on the thread count — so any kernel whose chunks write
/// disjoint outputs produces bit-identical results for every value of
/// RPAS_NUM_THREADS. Chunks are claimed dynamically, so `fn` must not
/// depend on which thread runs a chunk or in which order chunks run.
///
/// The first exception thrown by `fn` is rethrown on the calling thread
/// after all in-flight chunks have completed (remaining chunks are
/// abandoned). An empty range returns immediately without invoking `fn`;
/// `grain` >= the range size yields a single chunk. `grain` 0 is treated
/// as 1. Nested calls (from inside a pool worker) and calls with
/// RpasThreads() == 1 run serially on the calling thread.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace rpas

#endif  // RPAS_COMMON_PARALLEL_H_
