#include "common/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rpas {

std::vector<std::string> StrSplit(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      parts.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view StrTrim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view input) {
  std::string buf(StrTrim(input));
  if (buf.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("malformed double: '" + buf + "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view input) {
  std::string buf(StrTrim(input));
  if (buf.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("malformed integer: '" + buf + "'");
  }
  return static_cast<int64_t>(value);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace rpas
