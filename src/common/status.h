#ifndef RPAS_COMMON_STATUS_H_
#define RPAS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rpas {

/// Error category carried by a Status. Mirrors the common database-system
/// convention (RocksDB/LevelDB-style) of a small closed set of codes plus a
/// free-form message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIoError = 7,
  kResourceExhausted = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-type operation outcome. RPAS library code does not use exceptions;
/// every fallible operation returns a Status (or a Result<T>, see result.h).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Requires the enclosing function
/// to return Status (or a type constructible from it).
#define RPAS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::rpas::Status rpas_return_if_error_(expr);   \
    if (!rpas_return_if_error_.ok()) {            \
      return rpas_return_if_error_;               \
    }                                             \
  } while (false)

}  // namespace rpas

#endif  // RPAS_COMMON_STATUS_H_
