#ifndef RPAS_COMMON_STOPWATCH_H_
#define RPAS_COMMON_STOPWATCH_H_

#include <chrono>

namespace rpas {

/// Monotonic wall-clock stopwatch used by the computation-overhead benches
/// (paper Tables II–III).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  // Timing must never go backwards under NTP adjustments; keep the clock
  // monotonic even if the alias above is ever changed.
  static_assert(Clock::is_steady, "Stopwatch requires a monotonic clock");
  Clock::time_point start_;
};

}  // namespace rpas

#endif  // RPAS_COMMON_STOPWATCH_H_
