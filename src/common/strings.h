#ifndef RPAS_COMMON_STRINGS_H_
#define RPAS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace rpas {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view input, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view input);

/// Parses a double / int64; returns InvalidArgument on malformed or
/// partially-consumed input.
Result<double> ParseDouble(std::string_view input);
Result<int64_t> ParseInt64(std::string_view input);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace rpas

#endif  // RPAS_COMMON_STRINGS_H_
