#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace rpas {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  uint64_t mix =
      base ^ (0xA5A5A5A55A5A5A5Aull + stream * 0x2545F4914F6CDD1Dull);
  return SplitMix64(&mix);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  RPAS_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  RPAS_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. Uniform() can return 0; shift into (0, 1].
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  RPAS_DCHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  RPAS_DCHECK(rate > 0.0);
  return -std::log(1.0 - Uniform()) / rate;
}

double Rng::Gamma(double shape, double scale) {
  RPAS_DCHECK(shape > 0.0);
  RPAS_DCHECK(scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia–Tsang section 8).
    double u = Uniform();
    while (u <= 0.0) {
      u = Uniform();
    }
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) {
      continue;
    }
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v * scale;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::StudentT(double dof) {
  RPAS_DCHECK(dof > 0.0);
  const double z = Normal();
  const double chi2 = Gamma(dof / 2.0, 2.0);
  return z / std::sqrt(chi2 / dof);
}

double Rng::Pareto(double xm, double alpha) {
  RPAS_DCHECK(xm > 0.0);
  RPAS_DCHECK(alpha > 0.0);
  double u = 1.0 - Uniform();  // in (0, 1]
  return xm * std::pow(u, -1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double mean) {
  RPAS_DCHECK(mean >= 0.0);
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    double x = std::floor(Normal(mean, std::sqrt(mean)) + 0.5);
    return x < 0.0 ? 0 : static_cast<int>(x);
  }
  const double limit = std::exp(-mean);
  double product = Uniform();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= Uniform();
  }
  return count;
}

Rng Rng::Fork(uint64_t stream_id) const {
  return Rng(DeriveSeed(seed_, stream_id));
}

}  // namespace rpas
