#ifndef RPAS_COMMON_RNG_H_
#define RPAS_COMMON_RNG_H_

#include <cstdint>

namespace rpas {

/// SplitMix-style deterministic seed derivation: maps (base, stream) to an
/// independent 64-bit seed. Parallel tasks (backtest folds, scenario cells)
/// derive their Rng seed from the base seed and their task index so the
/// parallel schedule reproduces the serial one exactly.
uint64_t DeriveSeed(uint64_t base, uint64_t stream);

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// splitmix64). All stochastic RPAS components draw from an explicitly
/// seeded Rng so experiments are reproducible bit-for-bit across platforms;
/// std::random distributions are avoided because their output is
/// implementation-defined.
class Rng {
 public:
  /// Seeds the generator. Identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached second deviate).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Exponential with the given rate (rate > 0).
  double Exponential(double rate);

  /// Gamma(shape, scale) via Marsaglia–Tsang; shape > 0, scale > 0.
  double Gamma(double shape, double scale);

  /// Student-t with `dof` degrees of freedom (dof > 0).
  double StudentT(double dof);

  /// Pareto (Lomax form shifted to minimum xm): xm * U^(-1/alpha).
  /// Heavy-tailed; used for workload burst magnitudes.
  double Pareto(double xm, double alpha);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Poisson with the given mean (Knuth for small means, normal
  /// approximation above 64).
  int Poisson(double mean);

  /// Derives an independent generator: deterministic function of this
  /// generator's seed and `stream_id`, not of its current position.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
  uint64_t seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rpas

#endif  // RPAS_COMMON_RNG_H_
