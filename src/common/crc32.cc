#include "common/crc32.h"

#include <array>

namespace rpas {
namespace {

/// Byte-at-a-time table for the reflected IEEE polynomial 0xEDB88320,
/// generated once at static-init time (256 * 8 shift/xor steps — cheap).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t byte = 0; byte < 256; ++byte) {
    uint32_t crc = byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[byte] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace rpas
