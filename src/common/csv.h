#ifndef RPAS_COMMON_CSV_H_
#define RPAS_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rpas {

/// In-memory CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// Splits one CSV record into fields. Handles RFC 4180 quoting: a field
/// wrapped in double quotes may contain commas, and a doubled quote ("")
/// inside a quoted field decodes to one literal quote. Unquoted fields are
/// trimmed; quoted fields keep their content verbatim. Returns
/// InvalidArgument on an unterminated quote or on trailing characters
/// after a closing quote.
Result<std::vector<std::string>> SplitCsvRecord(const std::string& line);

/// Reads a comma-separated file with a mandatory header row. Accepts both
/// LF and CRLF line endings and RFC 4180 quoted fields (see
/// SplitCsvRecord). Returns IoError when the file cannot be opened and
/// InvalidArgument on ragged rows or malformed quoting.
Result<CsvTable> ReadCsv(const std::string& path);

/// Writes a table, quoting any field that contains a comma, a quote, a
/// newline, or leading/trailing whitespace; fields with commas or quotes
/// round-trip through ReadCsv exactly. (Records stay one per line —
/// ReadCsv rejects embedded newlines, which are quoted here only so the
/// output is never structurally ambiguous.) Returns IoError on failure.
Status WriteCsv(const std::string& path, const CsvTable& table);

/// Convenience: extracts one numeric column by name.
Result<std::vector<double>> CsvNumericColumn(const CsvTable& table,
                                             const std::string& column);

}  // namespace rpas

#endif  // RPAS_COMMON_CSV_H_
