#ifndef RPAS_COMMON_CSV_H_
#define RPAS_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rpas {

/// In-memory CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// Reads a comma-separated file with a mandatory header row. Fields are
/// trimmed; quoting is not supported (RPAS traces are plain numeric CSV).
/// Returns IoError when the file cannot be opened and InvalidArgument on
/// ragged rows.
Result<CsvTable> ReadCsv(const std::string& path);

/// Writes a table; returns IoError on failure.
Status WriteCsv(const std::string& path, const CsvTable& table);

/// Convenience: extracts one numeric column by name.
Result<std::vector<double>> CsvNumericColumn(const CsvTable& table,
                                             const std::string& column);

}  // namespace rpas

#endif  // RPAS_COMMON_CSV_H_
