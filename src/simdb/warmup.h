#ifndef RPAS_SIMDB_WARMUP_H_
#define RPAS_SIMDB_WARMUP_H_

#include "common/rng.h"

namespace rpas::simdb {

/// Scale-out warm-up model for a storage-disaggregated database
/// (paper Fig. 5: a new compute node only has to rebuild in-memory
/// components — buffer pool, caches — from checkpoints in shared storage,
/// which "only takes a few seconds").
///
/// warmup_seconds = base_latency + checkpoint_gb / replay_gbps, plus
/// multiplicative jitter. The paper's Fig. 5 production data (Alibaba Cloud)
/// is reproduced by sweeping checkpoint_gb; see bench/fig5.
struct WarmupModel {
  double base_latency_seconds = 1.2;  ///< node bring-up + registration
  double replay_gbps = 2.0;           ///< checkpoint replay bandwidth
  double jitter_fraction = 0.10;      ///< +/- uniform jitter

  /// Warm-up duration for a node loading `checkpoint_gb` of in-memory
  /// state. Deterministic given the Rng state.
  double WarmupSeconds(double checkpoint_gb, Rng* rng) const;
};

}  // namespace rpas::simdb

#endif  // RPAS_SIMDB_WARMUP_H_
