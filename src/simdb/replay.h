#ifndef RPAS_SIMDB_REPLAY_H_
#define RPAS_SIMDB_REPLAY_H_

#include <vector>

#include "common/result.h"
#include "simdb/cluster.h"
#include "ts/time_series.h"

namespace rpas::simdb {

/// Aggregate outcome of replaying an allocation plan against a realized
/// workload on the cluster simulator.
struct ReplayReport {
  std::vector<StepStats> steps;
  /// Fraction of steps whose average utilization exceeded the threshold
  /// (the realized analogue of the paper's Under-Provisioning Rate).
  double under_provision_rate = 0.0;
  /// Fraction of steps allocated strictly more nodes than the minimum that
  /// would have satisfied the threshold (paper's Over-Provisioning Rate).
  double over_provision_rate = 0.0;
  /// Fraction of steps whose latency proxy violated the SLO.
  double slo_violation_rate = 0.0;
  double mean_utilization = 0.0;
  int64_t total_node_steps = 0;
  int scale_events = 0;
  int direction_changes = 0;  ///< thrashing indicator (paper §V-A)
};

/// Replays `allocation[t]` nodes against `workload.values[t]` for every
/// step. Sizes must match.
Result<ReplayReport> ReplayAllocation(const ts::TimeSeries& workload,
                                      const std::vector<int>& allocation,
                                      const Cluster::Options& options);

}  // namespace rpas::simdb

#endif  // RPAS_SIMDB_REPLAY_H_
