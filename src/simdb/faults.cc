#include "simdb/faults.h"

#include <algorithm>

#include "common/logging.h"

namespace rpas::simdb {
namespace {

// Per-fault-type stream salts; distinct constants keep the Bernoulli
// schedules of different fault types independent of each other.
constexpr uint64_t kDelaySalt = 0xD1;
constexpr uint64_t kPartialSalt = 0xD2;
constexpr uint64_t kCrashSalt = 0xD3;
constexpr uint64_t kSpikeSalt = 0xD4;
constexpr uint64_t kTimeoutSalt = 0xD5;
constexpr uint64_t kNanSalt = 0xD6;
constexpr uint64_t kStaleSalt = 0xD7;
constexpr uint64_t kIngestStallSalt = 0xD8;

}  // namespace

std::string_view FaultTypeToString(FaultType type) {
  switch (type) {
    case FaultType::kActuationDelay:
      return "ActuationDelay";
    case FaultType::kPartialScaleOut:
      return "PartialScaleOut";
    case FaultType::kNodeCrash:
      return "NodeCrash";
    case FaultType::kWorkloadSpike:
      return "WorkloadSpike";
    case FaultType::kForecasterTimeout:
      return "ForecasterTimeout";
    case FaultType::kForecasterNan:
      return "ForecasterNan";
    case FaultType::kStaleForecast:
      return "StaleForecast";
    case FaultType::kPlannerError:
      return "PlannerError";
    case FaultType::kIngestStall:
      return "IngestStall";
    case FaultType::kIngestBurst:
      return "IngestBurst";
  }
  return "Unknown";
}

std::string_view FaultActionToString(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "None";
    case FaultAction::kRetrySucceeded:
      return "RetrySucceeded";
    case FaultAction::kFallbackLastGood:
      return "FallbackLastGood";
    case FaultAction::kFallbackReactive:
      return "FallbackReactive";
  }
  return "Unknown";
}

bool FaultPlan::Any() const {
  return actuation_delay_rate > 0.0 || partial_scaleout_rate > 0.0 ||
         crash_rate > 0.0 || spike_rate > 0.0 ||
         forecaster_timeout_rate > 0.0 || forecaster_nan_rate > 0.0 ||
         stale_forecast_rate > 0.0 || ingest_stall_rate > 0.0;
}

FaultPlan FaultPlan::Uniform(double rate, uint64_t seed) {
  FaultPlan plan;
  plan.actuation_delay_rate = rate;
  plan.partial_scaleout_rate = rate;
  plan.crash_rate = rate;
  plan.spike_rate = rate;
  plan.forecaster_timeout_rate = rate;
  plan.forecaster_nan_rate = rate;
  plan.stale_forecast_rate = rate;
  plan.seed = seed;
  return plan;
}

bool StepFaults::Any() const {
  return actuation_delayed || partial_fraction < 1.0 || crash_nodes > 0 ||
         workload_multiplier != 1.0 || forecaster_timeout_attempts > 0 ||
         forecaster_nan || stale_forecast || ingest_stalled;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {
  RPAS_CHECK(plan_.actuation_delay_steps >= 1);
  RPAS_CHECK(plan_.partial_fraction >= 0.0 && plan_.partial_fraction <= 1.0);
  RPAS_CHECK(plan_.crash_nodes >= 0);
  RPAS_CHECK(plan_.spike_multiplier > 0.0);
  RPAS_CHECK(plan_.forecaster_timeout_attempts >= 1);
  RPAS_CHECK(plan_.ingest_stall_steps >= 1);
  for (double rate :
       {plan_.actuation_delay_rate, plan_.partial_scaleout_rate,
        plan_.crash_rate, plan_.spike_rate, plan_.forecaster_timeout_rate,
        plan_.forecaster_nan_rate, plan_.stale_forecast_rate,
        plan_.ingest_stall_rate}) {
    RPAS_CHECK(rate >= 0.0 && rate <= 1.0) << "fault rate outside [0,1]";
  }
}

bool FaultInjector::Fires(uint64_t salt, size_t step, double rate) const {
  if (rate <= 0.0) {
    return false;
  }
  // One fresh generator per (type, step): purity is structural, not a
  // matter of careful draw ordering.
  Rng rng(DeriveSeed(DeriveSeed(plan_.seed, salt), step));
  return rng.Bernoulli(rate);
}

StepFaults FaultInjector::FaultsForStep(size_t step) const {
  StepFaults faults;
  // A delay firing at step s suppresses scale-out for the next
  // actuation_delay_steps steps; step is affected if any of the previous
  // k steps (including itself) fired.
  for (int back = 0; back < plan_.actuation_delay_steps; ++back) {
    if (step < static_cast<size_t>(back)) {
      break;
    }
    if (Fires(kDelaySalt, step - static_cast<size_t>(back),
              plan_.actuation_delay_rate)) {
      faults.actuation_delayed = true;
      break;
    }
  }
  if (Fires(kPartialSalt, step, plan_.partial_scaleout_rate)) {
    faults.partial_fraction = plan_.partial_fraction;
  }
  if (Fires(kCrashSalt, step, plan_.crash_rate)) {
    faults.crash_nodes = plan_.crash_nodes;
  }
  if (Fires(kSpikeSalt, step, plan_.spike_rate)) {
    faults.workload_multiplier = plan_.spike_multiplier;
  }
  if (Fires(kTimeoutSalt, step, plan_.forecaster_timeout_rate)) {
    faults.forecaster_timeout_attempts = plan_.forecaster_timeout_attempts;
  }
  if (Fires(kNanSalt, step, plan_.forecaster_nan_rate)) {
    faults.forecaster_nan = true;
  }
  if (Fires(kStaleSalt, step, plan_.stale_forecast_rate)) {
    faults.stale_forecast = true;
  }
  // Like actuation delay, a stall firing at step s covers a window of
  // steps; the step is stalled if any of the previous k steps fired.
  for (int back = 0; back < plan_.ingest_stall_steps; ++back) {
    if (step < static_cast<size_t>(back)) {
      break;
    }
    if (Fires(kIngestStallSalt, step - static_cast<size_t>(back),
              plan_.ingest_stall_rate)) {
      faults.ingest_stalled = true;
      break;
    }
  }
  return faults;
}

}  // namespace rpas::simdb
