#ifndef RPAS_SIMDB_FAULTS_H_
#define RPAS_SIMDB_FAULTS_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"

namespace rpas::simdb {

/// Categories of injected faults (RobustScaler / OptScaler both evaluate
/// their controllers under injected anomalies; this enumerates the failure
/// modes the online loop is stressed with).
enum class FaultType : int {
  kActuationDelay = 0,    ///< scale-out request deferred for k steps
  kPartialScaleOut = 1,   ///< requested N new nodes, fewer were granted
  kNodeCrash = 2,         ///< transient loss of running nodes
  kWorkloadSpike = 3,     ///< realized workload multiplied this step
  kForecasterTimeout = 4, ///< forecaster produced no answer in time
  kForecasterNan = 5,     ///< forecaster output contained non-finite values
  kStaleForecast = 6,     ///< forecaster served a cached, outdated forecast
  kPlannerError = 7,      ///< planner returned a genuine error status
  kIngestStall = 8,       ///< stream producer stalled; no points ingested
  kIngestBurst = 9,       ///< stalled points flushed in one burst append
};
std::string_view FaultTypeToString(FaultType type);

/// What the online loop's graceful-degradation policy did about a fault.
enum class FaultAction : int {
  kNone = 0,              ///< observed only; no recovery needed
  kRetrySucceeded = 1,    ///< bounded retry recovered a usable plan
  kFallbackLastGood = 2,  ///< degraded to the last known-good plan level
  kFallbackReactive = 3,  ///< degraded to a reactive plan from observations
};
std::string_view FaultActionToString(FaultAction action);

/// One entry of the per-step fault/recovery event log appended to
/// OnlineLoopResult.
struct FaultEvent {
  size_t step = 0;        ///< loop step index (0-based, relative to start)
  FaultType type = FaultType::kActuationDelay;
  FaultAction action = FaultAction::kNone;
  int retries = 0;        ///< failed attempts absorbed before recovery
  double magnitude = 0.0; ///< fault-specific size (nodes lost, multiplier..)
};

/// Seed-deterministic schedule of faults. Each rate is an independent
/// per-step Bernoulli probability; a rate of zero disables that fault
/// entirely. An all-zero plan is inert: the online loop takes exactly the
/// pre-fault code path and its output is bit-identical to a run without a
/// plan.
struct FaultPlan {
  /// Scale-out actuation is deferred: a firing at step s suppresses node
  /// additions for steps s .. s + actuation_delay_steps - 1 (the autoscaler
  /// keeps re-requesting, so capacity arrives once the outage clears).
  double actuation_delay_rate = 0.0;
  int actuation_delay_steps = 2;

  /// Scale-out is granted only partially: of N requested new nodes,
  /// floor(N * partial_fraction) arrive this step.
  double partial_scaleout_rate = 0.0;
  double partial_fraction = 0.5;

  /// Transient crash of up to `crash_nodes` running nodes (never below one
  /// surviving node). Generalizes Cluster::Options::failure_rate with a
  /// schedule that is independent of the cluster's own RNG stream.
  double crash_rate = 0.0;
  int crash_nodes = 1;

  /// Realized workload is multiplied by `spike_multiplier` for the step.
  double spike_rate = 0.0;
  double spike_multiplier = 2.0;

  /// Forecaster produces no answer: the first `forecaster_timeout_attempts`
  /// planning attempts of an affected round fail before one would succeed.
  double forecaster_timeout_rate = 0.0;
  int forecaster_timeout_attempts = 2;

  /// Forecaster emits non-finite values; detected by plan validation and
  /// costs one failed attempt of the affected planning round.
  double forecaster_nan_rate = 0.0;

  /// Forecaster serves its previous (cached) forecast instead of a fresh
  /// one; the round silently reuses the last known-good plan.
  double stale_forecast_rate = 0.0;

  /// Stream-ingest producer stall: a firing at step s stalls ingestion for
  /// steps s .. s + ingest_stall_steps - 1 (points queue at the producer);
  /// the first clear step flushes the queue as a burst append. Only
  /// consulted by streaming consumers (core::RunOnlineLoop in incremental
  /// refresh mode); not part of Uniform() so existing composite-fault
  /// schedules keep their exact event counts.
  double ingest_stall_rate = 0.0;
  int ingest_stall_steps = 2;

  uint64_t seed = 1234;

  /// True if any fault can ever fire.
  bool Any() const;

  /// Convenience: a composite plan with every rate set to `rate` (delay,
  /// partial, crash, spike, timeout, NaN, stale), default magnitudes.
  static FaultPlan Uniform(double rate, uint64_t seed);
};

/// Faults active at one step, as resolved by the injector.
struct StepFaults {
  bool actuation_delayed = false;
  double partial_fraction = 1.0;     ///< < 1 only when a partial fault fires
  int crash_nodes = 0;
  double workload_multiplier = 1.0;
  int forecaster_timeout_attempts = 0;
  bool forecaster_nan = false;
  bool stale_forecast = false;
  bool ingest_stalled = false;

  /// True if any field deviates from the no-fault default.
  bool Any() const;
};

/// Resolves a FaultPlan into per-step faults. FaultsForStep is a pure
/// function of (plan, step): the same step always yields the same faults
/// regardless of query order, thread count, or how many other steps were
/// queried — each fault type draws from its own DeriveSeed-derived stream,
/// so schedules for different types are independent.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  StepFaults FaultsForStep(size_t step) const;

 private:
  bool Fires(uint64_t salt, size_t step, double rate) const;

  FaultPlan plan_;
};

}  // namespace rpas::simdb

#endif  // RPAS_SIMDB_FAULTS_H_
