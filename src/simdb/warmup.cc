#include "simdb/warmup.h"

#include <algorithm>

#include "common/logging.h"

namespace rpas::simdb {

double WarmupModel::WarmupSeconds(double checkpoint_gb, Rng* rng) const {
  RPAS_CHECK(checkpoint_gb >= 0.0);
  RPAS_CHECK(replay_gbps > 0.0);
  const double nominal = base_latency_seconds + checkpoint_gb / replay_gbps;
  const double jitter =
      rng != nullptr ? rng->Uniform(-jitter_fraction, jitter_fraction) : 0.0;
  return std::max(0.0, nominal * (1.0 + jitter));
}

}  // namespace rpas::simdb
