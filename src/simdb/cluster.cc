#include "simdb/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpas::simdb {

Cluster::Cluster(Options options)
    : options_(std::move(options)), rng_(options_.seed) {
  RPAS_CHECK(options_.step_seconds > 0.0);
  RPAS_CHECK(options_.node_capacity > 0.0);
  RPAS_CHECK(options_.utilization_threshold > 0.0 &&
             options_.utilization_threshold <= 1.0);
  RPAS_CHECK(options_.initial_nodes >= options_.min_nodes);
  RPAS_CHECK(options_.min_nodes >= 1);
  nodes_.assign(static_cast<size_t>(options_.initial_nodes), Node{});

  // Handles are cached once; Step() touches only the cached pointers. A
  // caller constructing many clusters (the fleet's parallel per-tenant
  // setup) passes a pre-resolved bundle so the registry's lookup mutex is
  // taken once per fleet, not seven times per tenant. Counter values are
  // pure functions of the inputs either way (striped counters merge
  // exactly on read).
  if (options_.handles != nullptr) {
    handles_ = *options_.handles;
  } else {
    handles_ =
        MetricHandles::Resolve(obs::ResolveRegistry(options_.metrics));
  }
}

Cluster::MetricHandles Cluster::MetricHandles::Resolve(
    obs::MetricsRegistry* metrics) {
  MetricHandles handles;
  handles.steps = metrics->GetStripedCounter("simdb.steps");
  handles.nodes_added = metrics->GetStripedCounter("simdb.nodes_added");
  handles.nodes_removed = metrics->GetStripedCounter("simdb.nodes_removed");
  handles.nodes_failed = metrics->GetStripedCounter("simdb.nodes_failed");
  handles.slo_violations =
      metrics->GetStripedCounter("simdb.slo_violations");
  handles.under_provisioned =
      metrics->GetStripedCounter("simdb.under_provisioned");
  handles.nodes = metrics->GetGauge("simdb.nodes");
  return handles;
}

void Cluster::InjectNodeFailures(int count) {
  while (count-- > 0 && nodes_.size() > 1) {
    nodes_.pop_back();
    ++total_failures_;
  }
}

StepStats Cluster::Step(int target_nodes, double workload,
                        const StepFaults& faults) {
  target_nodes =
      std::clamp(target_nodes, options_.min_nodes, options_.max_nodes);
  workload *= faults.workload_multiplier;
  StepStats stats;
  stats.step = step_;
  stats.target_nodes = target_nodes;
  stats.workload = workload;
  stats.spike_multiplier = faults.workload_multiplier;

  const int current = static_cast<int>(nodes_.size());
  if (target_nodes > current) {
    const int requested = target_nodes - current;
    int granted = requested;
    if (faults.actuation_delayed) {
      // Actuation outage: no new capacity arrives this step. The
      // autoscaler keeps re-requesting, so the nodes appear once the
      // outage clears.
      granted = 0;
      stats.nodes_delayed = requested;
    } else if (faults.partial_fraction < 1.0) {
      granted = static_cast<int>(
          std::floor(static_cast<double>(requested) *
                     std::clamp(faults.partial_fraction, 0.0, 1.0)));
      stats.nodes_denied = requested - granted;
    }
    stats.nodes_added = granted;
    for (int i = 0; i < granted; ++i) {
      Node node;
      node.warmup_remaining_seconds =
          options_.warmup.WarmupSeconds(options_.checkpoint_gb, &rng_);
      nodes_.push_back(node);
    }
  } else if (target_nodes < current) {
    // Scale-in: stateless compute over shared storage detaches immediately;
    // remove the youngest (possibly still warming) nodes first.
    stats.nodes_removed = current - target_nodes;
    nodes_.resize(static_cast<size_t>(target_nodes));
  }
  if (stats.nodes_added > 0 || stats.nodes_removed > 0) {
    ++total_scale_events_;
    const int direction = stats.nodes_added > 0 ? 1 : -1;
    if (last_direction_ != 0 && direction != last_direction_) {
      ++total_direction_changes_;
    }
    last_direction_ = direction;
  }

  // Scheduled transient crashes (FaultPlan): youngest nodes first, never
  // below one survivor. Independent of the cluster's own RNG stream so a
  // fault schedule does not perturb warm-up jitter draws.
  for (int i = 0; i < faults.crash_nodes && nodes_.size() > 1; ++i) {
    nodes_.pop_back();
    ++stats.nodes_failed;
    ++total_failures_;
  }

  // Failure injection: each node may crash this step, losing its capacity;
  // the next decision re-provisions (the node count snaps back to target).
  if (options_.failure_rate > 0.0) {
    size_t write = 0;
    for (size_t read = 0; read < nodes_.size(); ++read) {
      if (nodes_.size() - (read - write) > 1 &&
          rng_.Bernoulli(options_.failure_rate)) {
        ++stats.nodes_failed;
        ++total_failures_;
        continue;  // drop this node
      }
      nodes_[write++] = nodes_[read];
    }
    nodes_.resize(write);
  }

  // Effective capacity: a node warming for w seconds of an s-second step
  // contributes (1 - w/s) of its capacity this step.
  double effective = 0.0;
  int active = 0;
  for (Node& node : nodes_) {
    if (node.warmup_remaining_seconds <= 0.0) {
      effective += 1.0;
      ++active;
    } else {
      const double overlap =
          std::min(node.warmup_remaining_seconds, options_.step_seconds);
      effective += 1.0 - overlap / options_.step_seconds;
      node.warmup_remaining_seconds -= options_.step_seconds;
    }
  }
  effective = std::max(effective, 1e-9);

  stats.active_nodes = active;
  stats.effective_nodes = effective;
  stats.avg_utilization =
      workload / (effective * options_.node_capacity);
  stats.under_provisioned =
      stats.avg_utilization > options_.utilization_threshold + 1e-12;

  // Latency proxy: M/M/1-style blow-up as utilization approaches 1.
  const double rho = std::min(stats.avg_utilization, 0.999);
  stats.p_latency_ms = options_.service_time_ms / (1.0 - rho);
  if (stats.avg_utilization >= 1.0) {
    stats.p_latency_ms = options_.service_time_ms * 1000.0;  // saturated
  }
  stats.slo_violated = stats.p_latency_ms > options_.slo_latency_ms;

  total_node_steps_ += static_cast<int64_t>(nodes_.size());
  ++step_;

  handles_.steps->Increment();
  handles_.nodes_added->Increment(stats.nodes_added);
  handles_.nodes_removed->Increment(stats.nodes_removed);
  handles_.nodes_failed->Increment(stats.nodes_failed);
  if (stats.slo_violated) {
    handles_.slo_violations->Increment();
  }
  if (stats.under_provisioned) {
    handles_.under_provisioned->Increment();
  }
  handles_.nodes->Set(static_cast<double>(nodes_.size()));
  return stats;
}

}  // namespace rpas::simdb
