#include "simdb/replay.h"

#include <cmath>

#include "common/logging.h"

namespace rpas::simdb {

Result<ReplayReport> ReplayAllocation(const ts::TimeSeries& workload,
                                      const std::vector<int>& allocation,
                                      const Cluster::Options& options) {
  if (workload.size() != allocation.size()) {
    return Status::InvalidArgument(
        "workload and allocation lengths differ");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("empty replay");
  }

  Cluster cluster(options);
  ReplayReport report;
  report.steps.reserve(workload.size());
  size_t under = 0;
  size_t over = 0;
  size_t slo = 0;
  double util_sum = 0.0;
  const double per_node =
      options.node_capacity * options.utilization_threshold;
  for (size_t t = 0; t < workload.size(); ++t) {
    StepStats stats = cluster.Step(allocation[t], workload.values[t]);
    util_sum += stats.avg_utilization;
    if (stats.under_provisioned) {
      ++under;
    }
    // Minimal nodes that would have met the threshold for this workload.
    const int minimal = std::max(
        options.min_nodes,
        static_cast<int>(std::ceil(workload.values[t] / per_node - 1e-9)));
    if (allocation[t] > minimal) {
      ++over;
    }
    if (stats.slo_violated) {
      ++slo;
    }
    report.steps.push_back(stats);
  }
  const double n = static_cast<double>(workload.size());
  report.under_provision_rate = static_cast<double>(under) / n;
  report.over_provision_rate = static_cast<double>(over) / n;
  report.slo_violation_rate = static_cast<double>(slo) / n;
  report.mean_utilization = util_sum / n;
  report.total_node_steps = cluster.total_node_steps();
  report.scale_events = cluster.total_scale_events();
  report.direction_changes = cluster.total_direction_changes();
  return report;
}

}  // namespace rpas::simdb
