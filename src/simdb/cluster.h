#ifndef RPAS_SIMDB_CLUSTER_H_
#define RPAS_SIMDB_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "simdb/faults.h"
#include "simdb/warmup.h"

namespace rpas::simdb {

/// Per-step observation of the simulated cluster.
struct StepStats {
  size_t step = 0;
  int target_nodes = 0;      ///< allocation requested for the step
  int active_nodes = 0;      ///< nodes counted at full capacity
  double effective_nodes = 0.0;  ///< active + fractional warming capacity
  double workload = 0.0;
  double avg_utilization = 0.0;  ///< workload / (effective * per-node cap.)
  double p_latency_ms = 0.0;     ///< queueing-model latency proxy
  bool under_provisioned = false;  ///< avg utilization above threshold
  bool slo_violated = false;       ///< latency proxy above SLO
  int nodes_added = 0;
  int nodes_removed = 0;
  int nodes_failed = 0;  ///< involuntary losses this step (crash injection)
  int nodes_delayed = 0; ///< requested adds suppressed by an actuation fault
  int nodes_denied = 0;  ///< requested adds lost to a partial scale-out
  double spike_multiplier = 1.0;  ///< workload fault applied this step
};

/// Storage-disaggregated database cluster simulator (paper Fig. 4): a pool
/// of stateless compute nodes over shared storage. Scale-out adds nodes
/// that spend a warm-up period rebuilding in-memory components from
/// checkpoints (Fig. 5) and contribute only fractional capacity during the
/// step in which they arrive; scale-in is immediate (paper §II-A: no data
/// migration in disaggregated architectures).
class Cluster {
 public:
  /// Pre-resolved simdb.* instrument handles. Resolving goes through the
  /// MetricsRegistry name-lookup mutex; a fleet constructing thousands of
  /// per-tenant clusters inside a parallel setup phase resolves ONCE and
  /// shares the bundle via Options::handles instead of paying (and
  /// contending on) seven lookups per cluster. The per-step counters fire
  /// inside the fleet's parallel shard phase, so they resolve striped
  /// (per-thread-slot, merged exactly on read — exported values are
  /// identical to unstriped counters).
  struct MetricHandles {
    obs::Counter* steps = nullptr;
    obs::Counter* nodes_added = nullptr;
    obs::Counter* nodes_removed = nullptr;
    obs::Counter* nodes_failed = nullptr;
    obs::Counter* slo_violations = nullptr;
    obs::Counter* under_provisioned = nullptr;
    obs::Gauge* nodes = nullptr;

    static MetricHandles Resolve(obs::MetricsRegistry* metrics);
  };

  struct Options {
    double step_seconds = 600.0;       ///< decision interval (10 minutes)
    double node_capacity = 1.0;        ///< workload units a node absorbs at
                                       ///< 100% utilization
    double utilization_threshold = 0.7;  ///< theta: target max avg load
    double checkpoint_gb = 4.0;        ///< in-memory state per node
    WarmupModel warmup;
    double service_time_ms = 2.0;      ///< nominal per-query service time
    double slo_latency_ms = 20.0;      ///< latency proxy SLO
    int initial_nodes = 1;
    int min_nodes = 1;
    int max_nodes = 1 << 20;
    /// Per-node per-step crash probability (failure injection). A crashed
    /// node disappears mid-step (its capacity is lost for that step); the
    /// next scaling decision replaces it with a fresh, warming node —
    /// stateless compute over shared storage recovers exactly this way.
    double failure_rate = 0.0;
    uint64_t seed = 1234;
    /// Metrics sink for per-step counters (simdb.steps, simdb.nodes_added,
    /// ...); null routes to obs::MetricsRegistry::Global(). Must outlive
    /// the cluster. Handles are cached at construction, so Step() pays only
    /// a few relaxed atomics (a load + branch while metrics are disabled).
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional pre-resolved handle bundle (see MetricHandles). When set it
    /// must have been resolved against the registry `metrics` routes to;
    /// the constructor then performs zero registry lookups.
    const MetricHandles* handles = nullptr;
  };

  explicit Cluster(Options options);

  /// Sets the target node count for the coming step (the auto-scaling
  /// decision), provisioning warm-ups / removals, then processes
  /// `workload` for one step and returns the observation.
  StepStats Step(int target_nodes, double workload) {
    return Step(target_nodes, workload, StepFaults{});
  }

  /// Step with injected faults: `faults` may defer or partially grant the
  /// scale-out actuation, crash running nodes, or multiply the realized
  /// workload. A default-constructed StepFaults makes this identical to the
  /// two-argument overload (same RNG consumption, same observation).
  StepStats Step(int target_nodes, double workload,
                 const StepFaults& faults);

  /// Current node count (including warming nodes).
  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  size_t CurrentStep() const { return step_; }
  const Options& options() const { return options_; }

  /// Crashes `count` nodes immediately (manual failure injection); they
  /// vanish before the next Step() and are replaced by the following
  /// scaling decision. Never drops below one node.
  void InjectNodeFailures(int count);

  /// Cumulative counters.
  int64_t total_node_steps() const { return total_node_steps_; }
  int total_scale_events() const { return total_scale_events_; }
  int total_direction_changes() const { return total_direction_changes_; }
  int total_failures() const { return total_failures_; }

 private:
  struct Node {
    double warmup_remaining_seconds = 0.0;
  };

  Options options_;
  std::vector<Node> nodes_;
  // Cached metric handles (owned by the registry behind Options::metrics).
  MetricHandles handles_;
  size_t step_ = 0;
  Rng rng_;
  int64_t total_node_steps_ = 0;
  int total_scale_events_ = 0;
  int total_direction_changes_ = 0;
  int total_failures_ = 0;
  int last_direction_ = 0;
};

}  // namespace rpas::simdb

#endif  // RPAS_SIMDB_CLUSTER_H_
