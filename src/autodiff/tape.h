#ifndef RPAS_AUTODIFF_TAPE_H_
#define RPAS_AUTODIFF_TAPE_H_

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "autodiff/arena.h"
#include "tensor/matrix.h"

namespace rpas::autodiff {

using tensor::Matrix;

class Tape;

/// Trainable tensor owned by a model. A Parameter outlives any Tape; during
/// a training step the tape binds it to a graph node, and Backward() exports
/// the accumulated gradient back into `grad`.
struct Parameter {
  Matrix value;
  Matrix grad;

  explicit Parameter(Matrix v) : value(std::move(v)), grad() {
    grad = Matrix(value.rows(), value.cols());
  }

  size_t size() const { return value.size(); }
  void ZeroGrad() { grad.Fill(0.0); }
};

/// Lightweight handle to a node on a Tape. Copyable; valid until the owning
/// tape is Reset() or destroyed.
class Var {
 public:
  Var() : tape_(nullptr), id_(0) {}
  Var(Tape* tape, size_t id) : tape_(tape), id_(id) {}

  bool valid() const { return tape_ != nullptr; }
  size_t id() const { return id_; }
  Tape* tape() const { return tape_; }

  /// Forward value of this node.
  const Matrix& value() const;
  /// Gradient accumulated by the last Backward() pass.
  const Matrix& grad() const;

  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }

 private:
  Tape* tape_;
  size_t id_;
};

/// Reverse-mode automatic differentiation tape over dense matrices.
///
/// Usage per training step:
///   Tape tape;                            // or tape.Reset() to reuse one
///   Var w = tape.Bind(&weights);          // dedup'd: same node if rebound
///   Var x = tape.Constant(batch);
///   Var loss = tape.Mean(tape.Square(tape.Sub(tape.MatMul(x, w), y)));
///   tape.Backward(loss);                  // fills weights.grad
///
/// Nodes are created in topological order, so Backward simply walks the node
/// list in reverse. The tape is single-threaded and meant to be rebuilt per
/// step (define-by-run).
///
/// Storage: node values, gradients, and fused-op scratch live in a per-tape
/// MatrixArena. Reset() rewinds the arena and node list while keeping their
/// heap capacity, so steady-state training allocates nothing per step
/// (ArenaStats().heap_allocs goes flat after the first step — the train
/// loop's O(1)-allocation criterion). Bind() aliases the Parameter's value
/// matrix instead of copying it; callers must not mutate parameters between
/// graph construction and Backward() (the optimizer steps afterwards, and
/// the tape is Reset() before the next forward, so the standard train loop
/// satisfies this by construction).
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Rewinds the tape for the next step: drops all nodes and bindings but
  /// keeps node-slot and arena capacity. Invalidates every Var and every
  /// Matrix pointer previously handed out.
  void Reset();

  /// Arena allocation counters (heap_allocs is flat once training reaches
  /// steady state).
  const MatrixArena::Stats& ArenaStats() const { return arena_.stats(); }

  /// Leaf node with no gradient tracking (inputs, targets, masks). The
  /// buffer is adopted by move — prefer Input() on hot paths so the caller
  /// doesn't construct a fresh Matrix per step.
  Var Constant(Matrix value);

  /// Zero-filled constant leaf served straight from the arena (no caller
  /// allocation; used for recurrent zero states).
  Var Zeros(size_t rows, size_t cols);

  /// Arena-backed constant leaf the caller fills in place via
  /// MutableValue(). The matrix starts zeroed.
  Var Input(size_t rows, size_t cols);

  /// Mutable access to a leaf's value for filling Input() nodes. Must not
  /// be called on Bind() nodes (their value aliases the Parameter) or after
  /// downstream nodes have consumed the value.
  Matrix* MutableValue(Var v);

  /// Leaf node bound to a Parameter. Binding the same Parameter twice on one
  /// tape returns the same node, so weight sharing (e.g., an LSTM cell
  /// unrolled over time) accumulates gradients correctly.
  Var Bind(Parameter* param);

  // --- Linear algebra ---
  Var MatMul(Var a, Var b);
  Var Transpose(Var a);

  // --- Elementwise binary (shapes must match) ---
  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);
  Var Div(Var a, Var b);
  /// Elementwise maximum; the subgradient routes to the larger input
  /// (ties go to `a`).
  Var Max(Var a, Var b);

  /// Adds a 1 x C row vector `row` to every row of `a` (bias broadcast).
  Var AddRowBroadcast(Var a, Var row);
  /// Multiplies every row of `a` elementwise by the 1 x C row vector.
  Var MulRowBroadcast(Var a, Var row);

  // --- Scalar ops ---
  Var Scale(Var a, double s);
  Var AddScalar(Var a, double s);

  // --- Elementwise unary ---
  Var Neg(Var a);
  Var Tanh(Var a);
  Var Sigmoid(Var a);
  Var Relu(Var a);
  /// log(1 + e^x), numerically stable; maps to positive reals.
  Var Softplus(Var a);
  Var Exp(Var a);
  /// Natural log; inputs must be positive.
  Var Log(Var a);
  Var Square(Var a);
  Var Sqrt(Var a);

  /// Row-wise softmax (each row sums to 1).
  Var SoftmaxRows(Var a);

  // --- Shape ops ---
  Var ConcatCols(Var a, Var b);
  Var ConcatRows(Var a, Var b);
  Var SliceCols(Var a, size_t begin, size_t end);
  Var SliceRows(Var a, size_t begin, size_t end);
  Var Reshape(Var a, size_t rows, size_t cols);

  // --- Reductions (produce 1x1) ---
  Var Sum(Var a);
  Var Mean(Var a);

  /// Generic custom op: `value` is the forward result, `backward` receives
  /// the output gradient and must accumulate into the inputs' grads via
  /// AccumulateGrad(). Used for fused losses with analytic gradients
  /// (e.g., Student-t NLL).
  Var Custom(const std::vector<Var>& inputs, Matrix value,
             std::function<void(const Matrix& grad_out, Tape* tape)> backward);

  /// Low-level fused-op hook: creates a node with an arena-allocated
  /// rows x cols value, returned via `value_out` for the caller to fill
  /// before any downstream node consumes it. Used by nn::LstmCell's fused
  /// step.
  Var AllocNode(size_t rows, size_t cols, bool requires_grad,
                std::function<void(const Matrix& grad_out, Tape* tape)>
                    backward,
                Matrix** value_out);

  /// Zero-filled arena scratch not attached to any node. Valid until
  /// Reset(); used by fused ops for saved activations and by backward
  /// passes for temporaries.
  Matrix* Scratch(size_t rows, size_t cols) { return arena_.Acquire(rows, cols); }

  /// Whether gradients flow through `v` (for fused backward passes that can
  /// skip whole input branches).
  bool RequiresGrad(Var v) const;

  /// Runs reverse-mode accumulation seeded with d(loss)/d(loss) = 1.
  /// `loss` must be 1x1. Afterwards, every bound Parameter's `grad` holds
  /// the accumulated gradient (added to its previous content, so call
  /// ZeroGrad() between steps).
  void Backward(Var loss);

  /// Adds `g` into node `id`'s gradient (for custom ops).
  void AccumulateGrad(size_t id, const Matrix& g);

  /// Number of nodes currently on the tape.
  size_t NumNodes() const { return num_nodes_; }

  const Matrix& ValueOf(size_t id) const;
  const Matrix& GradOf(size_t id) const;

 private:
  friend class Var;

  struct Node {
    Matrix* value = nullptr;  // arena-owned, or aliases a Parameter's value
    Matrix* grad = nullptr;   // arena-owned
    bool requires_grad = false;
    // Accumulates into parents' grads given this node's grad.
    std::function<void(const Matrix& grad_out, Tape* tape)> backward;
    Parameter* bound_param = nullptr;
  };

  /// Recycles or appends a node slot; value/grad pointers left for the
  /// caller to fill.
  size_t NewNode(bool requires_grad,
                 std::function<void(const Matrix&, Tape*)> backward);
  /// NewNode + arena value and grad of the given shape.
  size_t NewArenaNode(size_t rows, size_t cols, bool requires_grad,
                      std::function<void(const Matrix&, Tape*)> backward);
  /// Node grad for in-place accumulation; nullptr when grads don't flow.
  Matrix* GradFor(size_t id) {
    return nodes_[id].requires_grad ? nodes_[id].grad : nullptr;
  }

  std::vector<Node> nodes_;
  size_t num_nodes_ = 0;  // live prefix of nodes_; slots recycle on Reset()
  MatrixArena arena_;
  std::unordered_map<Parameter*, size_t> param_nodes_;
};

}  // namespace rpas::autodiff

#endif  // RPAS_AUTODIFF_TAPE_H_
