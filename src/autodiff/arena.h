#ifndef RPAS_AUTODIFF_ARENA_H_
#define RPAS_AUTODIFF_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace rpas::autodiff {

/// Bump arena of recycled tensor::Matrix buffers backing a Tape's node
/// values, gradients, and fused-op scratch.
///
/// Lifecycle: Acquire() hands out zero-filled matrices in bump order;
/// Reset() rewinds the cursor without releasing anything, so the next tape
/// build reuses the same heap blocks (steady-state training performs no
/// allocation — the acceptance metric tracked by Stats::heap_allocs).
///
/// Aliasing invariants (see DESIGN.md §10):
///  * Returned pointers are stable until the arena is destroyed — slots are
///    individually heap-owned, so growing the slot table never moves a
///    matrix another node already points at.
///  * A matrix acquired before Reset() must never be read after Reset():
///    the slot is re-issued, possibly reshaped, to the next acquirer.
class MatrixArena {
 public:
  struct Stats {
    /// Heap allocations attributed to the arena: new slots plus buffer
    /// growth when a recycled slot's capacity was insufficient. Flat across
    /// steady-state training steps.
    size_t heap_allocs = 0;
    /// Total slots ever created.
    size_t slots = 0;
    /// Slots handed out since the last Reset().
    size_t live = 0;
  };

  MatrixArena() = default;
  MatrixArena(const MatrixArena&) = delete;
  MatrixArena& operator=(const MatrixArena&) = delete;

  /// Zero-filled rows x cols matrix, recycled from the pool when possible.
  tensor::Matrix* Acquire(size_t rows, size_t cols) {
    if (cursor_ == slots_.size()) {
      slots_.push_back(std::make_unique<tensor::Matrix>(rows, cols));
      ++stats_.slots;
      // One alloc for the slot object, one for its buffer (if non-empty).
      stats_.heap_allocs += rows * cols > 0 ? 2 : 1;
    } else {
      tensor::Matrix* m = slots_[cursor_].get();
      const size_t before = m->capacity();
      m->ResizeZero(rows, cols);
      if (m->capacity() != before) {
        ++stats_.heap_allocs;
      }
    }
    stats_.live = ++cursor_;
    return slots_[cursor_ - 1].get();
  }

  /// Rewinds the cursor; capacity is retained for the next tape build.
  void Reset() {
    cursor_ = 0;
    stats_.live = 0;
  }

  const Stats& stats() const { return stats_; }

 private:
  std::vector<std::unique_ptr<tensor::Matrix>> slots_;
  size_t cursor_ = 0;
  Stats stats_;
};

}  // namespace rpas::autodiff

#endif  // RPAS_AUTODIFF_ARENA_H_
