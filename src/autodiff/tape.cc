#include "autodiff/tape.h"

#include <cmath>
#include <utility>

#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace rpas::autodiff {

namespace ops = ::rpas::tensor;
namespace kernels = ::rpas::tensor::kernels;

// Bit-identity discipline (scalar dispatch level must reproduce the
// pre-arena tape exactly):
//  * Forward values are computed into zero-filled arena matrices with the
//    same per-element expressions and loop order as the old out-of-place
//    ops, so the stored values are bit-identical.
//  * Backward contributions whose per-element value is a single rounded
//    expression (g[i]*b[i], g[i]/b[i], scatter copies, ...) accumulate
//    directly into the parent's grad: the old code computed the identical
//    value into a temp and then Axpy'd it, which rounds the same way.
//  * Contributions that are themselves accumulations (GEMM backward,
//    column sums) or that the old code staged through a zero temp whose
//    zero elements were still added (Max, elementwise activations) go
//    through a zeroed Scratch() and AccumulateGrad(), preserving the old
//    temp-from-zero-then-add rounding and signed-zero behavior.
//  * Backward lambdas capture at most two words so std::function stays in
//    its small-buffer slot — no per-node heap traffic on the hot path.

const Matrix& Var::value() const {
  RPAS_CHECK(tape_ != nullptr) << "value() on default-constructed Var";
  return tape_->ValueOf(id_);
}

const Matrix& Var::grad() const {
  RPAS_CHECK(tape_ != nullptr) << "grad() on default-constructed Var";
  return tape_->GradOf(id_);
}

const Matrix& Tape::ValueOf(size_t id) const {
  RPAS_DCHECK(id < num_nodes_);
  return *nodes_[id].value;
}

const Matrix& Tape::GradOf(size_t id) const {
  RPAS_DCHECK(id < num_nodes_);
  return *nodes_[id].grad;
}

void Tape::Reset() {
  for (size_t i = 0; i < num_nodes_; ++i) {
    Node& node = nodes_[i];
    node.value = nullptr;
    node.grad = nullptr;
    node.requires_grad = false;
    node.backward = nullptr;
    node.bound_param = nullptr;
  }
  num_nodes_ = 0;
  param_nodes_.clear();
  arena_.Reset();
}

size_t Tape::NewNode(bool requires_grad,
                     std::function<void(const Matrix&, Tape*)> backward) {
  if (num_nodes_ == nodes_.size()) {
    nodes_.emplace_back();
  }
  Node& node = nodes_[num_nodes_];
  node.value = nullptr;
  node.grad = nullptr;
  node.requires_grad = requires_grad;
  node.backward = std::move(backward);
  node.bound_param = nullptr;
  return num_nodes_++;
}

size_t Tape::NewArenaNode(size_t rows, size_t cols, bool requires_grad,
                          std::function<void(const Matrix&, Tape*)> backward) {
  size_t id = NewNode(requires_grad, std::move(backward));
  nodes_[id].value = arena_.Acquire(rows, cols);
  nodes_[id].grad = arena_.Acquire(rows, cols);
  return id;
}

bool Tape::RequiresGrad(Var v) const {
  RPAS_DCHECK(v.tape() == this);
  return nodes_[v.id()].requires_grad;
}

void Tape::AccumulateGrad(size_t id, const Matrix& g) {
  RPAS_DCHECK(id < num_nodes_);
  if (!nodes_[id].requires_grad) {
    return;
  }
  ops::Axpy(1.0, g, nodes_[id].grad);
}

Var Tape::Constant(Matrix value) {
  size_t id = NewNode(/*requires_grad=*/false, nullptr);
  // Donate the caller's buffer to a recycled slot instead of copying.
  Matrix* slot = arena_.Acquire(0, 0);
  *slot = std::move(value);
  nodes_[id].value = slot;
  nodes_[id].grad = arena_.Acquire(slot->rows(), slot->cols());
  return Var(this, id);
}

Var Tape::Zeros(size_t rows, size_t cols) { return Input(rows, cols); }

Var Tape::Input(size_t rows, size_t cols) {
  size_t id = NewArenaNode(rows, cols, /*requires_grad=*/false, nullptr);
  return Var(this, id);
}

Matrix* Tape::MutableValue(Var v) {
  RPAS_DCHECK(v.tape() == this);
  Node& node = nodes_[v.id()];
  RPAS_CHECK(node.bound_param == nullptr && !node.requires_grad)
      << "MutableValue is only valid on Constant/Input/Zeros leaves";
  return node.value;
}

Var Tape::Bind(Parameter* param) {
  RPAS_CHECK(param != nullptr);
  auto it = param_nodes_.find(param);
  if (it != param_nodes_.end()) {
    return Var(this, it->second);
  }
  size_t id = NewNode(/*requires_grad=*/true, nullptr);
  // Alias the parameter's storage: the optimizer only mutates parameters
  // after Backward(), and the tape is Reset() before the next forward.
  nodes_[id].value = &param->value;
  nodes_[id].grad = arena_.Acquire(param->value.rows(), param->value.cols());
  nodes_[id].bound_param = param;
  param_nodes_[param] = id;
  return Var(this, id);
}

Var Tape::MatMul(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const bool rg = RequiresGrad(a) || RequiresGrad(b);
  size_t id = NewArenaNode(a.rows(), b.value().cols(), rg,
                           [ai, bi](const Matrix& g, Tape* t) {
                             // dA = g * B^T ; dB = A^T * g
                             if (t->nodes_[ai].requires_grad) {
                               const Matrix& bv = t->ValueOf(bi);
                               Matrix* s = t->Scratch(g.rows(), bv.rows());
                               ops::MatMulNTInto(g, bv, s);
                               t->AccumulateGrad(ai, *s);
                             }
                             if (t->nodes_[bi].requires_grad) {
                               const Matrix& av = t->ValueOf(ai);
                               Matrix* s = t->Scratch(av.cols(), g.cols());
                               ops::MatMulTNInto(av, g, s);
                               t->AccumulateGrad(bi, *s);
                             }
                           });
  ops::MatMulInto(a.value(), b.value(), nodes_[id].value);
  return Var(this, id);
}

Var Tape::Transpose(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.cols(), av.rows(), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             Matrix* s = t->Scratch(g.cols(), g.rows());
                             for (size_t r = 0; r < g.rows(); ++r) {
                               for (size_t c = 0; c < g.cols(); ++c) {
                                 (*s)(c, r) = g(r, c);
                               }
                             }
                             t->AccumulateGrad(ai, *s);
                           });
  Matrix* out = nodes_[id].value;
  for (size_t r = 0; r < av.rows(); ++r) {
    for (size_t c = 0; c < av.cols(); ++c) {
      (*out)(c, r) = av(r, c);
    }
  }
  return Var(this, id);
}

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b, const char* name) {
  RPAS_CHECK(a.SameShape(b)) << name << " shape mismatch: " << a.rows() << "x"
                             << a.cols() << " vs " << b.rows() << "x"
                             << b.cols();
}

}  // namespace

Var Tape::Add(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CheckSameShape(av, bv, "add");
  size_t id = NewArenaNode(av.rows(), av.cols(),
                           RequiresGrad(a) || RequiresGrad(b),
                           [ai, bi](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, g);
                             t->AccumulateGrad(bi, g);
                           });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i] + bv[i];
  }
  return Var(this, id);
}

Var Tape::Sub(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CheckSameShape(av, bv, "sub");
  size_t id = NewArenaNode(av.rows(), av.cols(),
                           RequiresGrad(a) || RequiresGrad(b),
                           [ai, bi](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, g);
                             if (Matrix* gb = t->GradFor(bi)) {
                               // grad += (-1)*g — same rounding as the old
                               // Scale(g, -1) temp.
                               ops::Axpy(-1.0, g, gb);
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i] - bv[i];
  }
  return Var(this, id);
}

Var Tape::Mul(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CheckSameShape(av, bv, "mul");
  size_t id = NewArenaNode(av.rows(), av.cols(),
                           RequiresGrad(a) || RequiresGrad(b),
                           [ai, bi](const Matrix& g, Tape* t) {
                             const Matrix& bv2 = t->ValueOf(bi);
                             if (Matrix* ga = t->GradFor(ai)) {
                               for (size_t i = 0; i < g.size(); ++i) {
                                 (*ga)[i] += g[i] * bv2[i];
                               }
                             }
                             const Matrix& av2 = t->ValueOf(ai);
                             if (Matrix* gb = t->GradFor(bi)) {
                               for (size_t i = 0; i < g.size(); ++i) {
                                 (*gb)[i] += g[i] * av2[i];
                               }
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i] * bv[i];
  }
  return Var(this, id);
}

Var Tape::Div(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CheckSameShape(av, bv, "div");
  size_t id = NewArenaNode(
      av.rows(), av.cols(), RequiresGrad(a) || RequiresGrad(b),
      [ai, bi](const Matrix& g, Tape* t) {
        const Matrix& bv2 = t->ValueOf(bi);
        if (Matrix* ga = t->GradFor(ai)) {
          for (size_t i = 0; i < g.size(); ++i) {
            (*ga)[i] += g[i] / bv2[i];
          }
        }
        // d/db (a/b) = -a / b^2
        const Matrix& av2 = t->ValueOf(ai);
        if (Matrix* gb = t->GradFor(bi)) {
          for (size_t i = 0; i < g.size(); ++i) {
            (*gb)[i] += -(g[i] * av2[i]) / (bv2[i] * bv2[i]);
          }
        }
      });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i] / bv[i];
  }
  return Var(this, id);
}

Var Tape::Max(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CheckSameShape(av, bv, "Max");
  size_t id = NewArenaNode(
      av.rows(), av.cols(), RequiresGrad(a) || RequiresGrad(b),
      [ai, bi](const Matrix& g, Tape* t) {
        const Matrix& av2 = t->ValueOf(ai);
        const Matrix& bv2 = t->ValueOf(bi);
        Matrix* ga = t->Scratch(g.rows(), g.cols());
        Matrix* gb = t->Scratch(g.rows(), g.cols());
        for (size_t i = 0; i < g.size(); ++i) {
          if (av2[i] >= bv2[i]) {
            (*ga)[i] = g[i];
          } else {
            (*gb)[i] = g[i];
          }
        }
        t->AccumulateGrad(ai, *ga);
        t->AccumulateGrad(bi, *gb);
      });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i] >= bv[i] ? av[i] : bv[i];
  }
  return Var(this, id);
}

Var Tape::AddRowBroadcast(Var a, Var row) {
  const size_t ai = a.id();
  const size_t ri = row.id();
  const Matrix& av = a.value();
  const Matrix& rv = row.value();
  RPAS_CHECK(rv.rows() == 1 && rv.cols() == av.cols())
      << "broadcast shape mismatch";
  size_t id = NewArenaNode(av.rows(), av.cols(),
                           RequiresGrad(a) || RequiresGrad(row),
                           [ai, ri](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, g);
                             if (t->nodes_[ri].requires_grad) {
                               Matrix* s = t->Scratch(1, g.cols());
                               for (size_t r = 0; r < g.rows(); ++r) {
                                 for (size_t c = 0; c < g.cols(); ++c) {
                                   (*s)(0, c) += g(r, c);
                                 }
                               }
                               t->AccumulateGrad(ri, *s);
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t r = 0; r < av.rows(); ++r) {
    for (size_t c = 0; c < av.cols(); ++c) {
      (*out)(r, c) = av(r, c) + rv(0, c);
    }
  }
  return Var(this, id);
}

Var Tape::MulRowBroadcast(Var a, Var row) {
  const size_t ai = a.id();
  const size_t ri = row.id();
  const Matrix& av = a.value();
  const Matrix& rv = row.value();
  RPAS_CHECK(rv.rows() == 1 && rv.cols() == av.cols())
      << "MulRowBroadcast shape mismatch";
  size_t id = NewArenaNode(
      av.rows(), av.cols(), RequiresGrad(a) || RequiresGrad(row),
      [ai, ri](const Matrix& g, Tape* t) {
        const Matrix& av2 = t->ValueOf(ai);
        const Matrix& rv2 = t->ValueOf(ri);
        Matrix* ga = t->GradFor(ai);
        Matrix* gr = t->nodes_[ri].requires_grad
                         ? t->Scratch(1, rv2.cols())
                         : nullptr;
        for (size_t r = 0; r < g.rows(); ++r) {
          for (size_t c = 0; c < g.cols(); ++c) {
            if (ga != nullptr) {
              (*ga)(r, c) += g(r, c) * rv2(0, c);
            }
            if (gr != nullptr) {
              (*gr)(0, c) += g(r, c) * av2(r, c);
            }
          }
        }
        if (gr != nullptr) {
          t->AccumulateGrad(ri, *gr);
        }
      });
  Matrix* out = nodes_[id].value;
  for (size_t r = 0; r < av.rows(); ++r) {
    for (size_t c = 0; c < av.cols(); ++c) {
      (*out)(r, c) = av(r, c) * rv(0, c);
    }
  }
  return Var(this, id);
}

Var Tape::Scale(Var a, double s) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a),
                           [ai, s](const Matrix& g, Tape* t) {
                             if (Matrix* ga = t->GradFor(ai)) {
                               ops::Axpy(s, g, ga);
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i] * s;
  }
  return Var(this, id);
}

Var Tape::AddScalar(Var a, double s) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, g);
                           });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i] + s;
  }
  return Var(this, id);
}

Var Tape::Neg(Var a) { return Scale(a, -1.0); }

Var Tape::Tanh(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a), nullptr);
  kernels::EwTanh(kernels::ActiveLevel(), av.size(), av.data(),
                  nodes_[id].value->data());
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    Matrix* ga = t->Scratch(g.rows(), g.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      (*ga)[i] = g[i] * (1.0 - y[i] * y[i]);
    }
    t->AccumulateGrad(ai, *ga);
  };
  return Var(this, id);
}

Var Tape::Sigmoid(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a), nullptr);
  kernels::EwSigmoid(kernels::ActiveLevel(), av.size(), av.data(),
                     nodes_[id].value->data());
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    Matrix* ga = t->Scratch(g.rows(), g.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      (*ga)[i] = g[i] * y[i] * (1.0 - y[i]);
    }
    t->AccumulateGrad(ai, *ga);
  };
  return Var(this, id);
}

Var Tape::Relu(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             const Matrix& x = t->ValueOf(ai);
                             Matrix* ga = t->Scratch(g.rows(), g.cols());
                             for (size_t i = 0; i < g.size(); ++i) {
                               (*ga)[i] = x[i] > 0.0 ? g[i] : 0.0;
                             }
                             t->AccumulateGrad(ai, *ga);
                           });
  kernels::EwRelu(kernels::ActiveLevel(), av.size(), av.data(),
                  nodes_[id].value->data());
  return Var(this, id);
}

Var Tape::Softplus(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(
      av.rows(), av.cols(), RequiresGrad(a),
      [ai](const Matrix& g, Tape* t) {
        const Matrix& x = t->ValueOf(ai);
        Matrix* ga = t->Scratch(g.rows(), g.cols());
        for (size_t i = 0; i < g.size(); ++i) {
          // d softplus / dx = sigmoid(x)
          double s = x[i] >= 0.0
                         ? 1.0 / (1.0 + std::exp(-x[i]))
                         : std::exp(x[i]) / (1.0 + std::exp(x[i]));
          (*ga)[i] = g[i] * s;
        }
        t->AccumulateGrad(ai, *ga);
      });
  kernels::EwSoftplus(kernels::ActiveLevel(), av.size(), av.data(),
                      nodes_[id].value->data());
  return Var(this, id);
}

Var Tape::Exp(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a), nullptr);
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = std::exp(av[i]);
  }
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    if (Matrix* ga = t->GradFor(ai)) {
      for (size_t i = 0; i < g.size(); ++i) {
        (*ga)[i] += g[i] * y[i];
      }
    }
  };
  return Var(this, id);
}

Var Tape::Log(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             const Matrix& x = t->ValueOf(ai);
                             if (Matrix* ga = t->GradFor(ai)) {
                               for (size_t i = 0; i < g.size(); ++i) {
                                 (*ga)[i] += g[i] / x[i];
                               }
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = std::log(av[i]);
  }
  return Var(this, id);
}

Var Tape::Square(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             const Matrix& x = t->ValueOf(ai);
                             if (Matrix* ga = t->GradFor(ai)) {
                               // Same rounding as the old Mul-then-Scale(2)
                               // temp: 2 * (g*x).
                               for (size_t i = 0; i < g.size(); ++i) {
                                 (*ga)[i] += (g[i] * x[i]) * 2.0;
                               }
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i] * av[i];
  }
  return Var(this, id);
}

Var Tape::Sqrt(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(av.rows(), av.cols(), RequiresGrad(a), nullptr);
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = std::sqrt(av[i]);
  }
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    if (Matrix* ga = t->GradFor(ai)) {
      for (size_t i = 0; i < g.size(); ++i) {
        (*ga)[i] += g[i] * 0.5 / y[i];
      }
    }
  };
  return Var(this, id);
}

Var Tape::SoftmaxRows(Var a) {
  const size_t ai = a.id();
  const Matrix& x = a.value();
  size_t id = NewArenaNode(x.rows(), x.cols(), RequiresGrad(a), nullptr);
  Matrix& value = *nodes_[id].value;
  for (size_t r = 0; r < x.rows(); ++r) {
    double mx = -1e300;
    for (size_t c = 0; c < x.cols(); ++c) {
      mx = std::max(mx, x(r, c));
    }
    double z = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) {
      value(r, c) = std::exp(x(r, c) - mx);
      z += value(r, c);
    }
    for (size_t c = 0; c < x.cols(); ++c) {
      value(r, c) /= z;
    }
  }
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    Matrix* ga = t->Scratch(g.rows(), g.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      double dot = 0.0;
      for (size_t c = 0; c < g.cols(); ++c) {
        dot += g(r, c) * y(r, c);
      }
      for (size_t c = 0; c < g.cols(); ++c) {
        (*ga)(r, c) = y(r, c) * (g(r, c) - dot);
      }
    }
    t->AccumulateGrad(ai, *ga);
  };
  return Var(this, id);
}

Var Tape::ConcatCols(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  RPAS_CHECK(av.rows() == bv.rows()) << "concat-cols row mismatch";
  size_t id = NewArenaNode(
      av.rows(), av.cols() + bv.cols(), RequiresGrad(a) || RequiresGrad(b),
      [ai, bi](const Matrix& g, Tape* t) {
        const size_t split = t->ValueOf(ai).cols();
        if (Matrix* ga = t->GradFor(ai)) {
          for (size_t r = 0; r < g.rows(); ++r) {
            for (size_t c = 0; c < split; ++c) {
              (*ga)(r, c) += g(r, c);
            }
          }
        }
        if (Matrix* gb = t->GradFor(bi)) {
          for (size_t r = 0; r < g.rows(); ++r) {
            for (size_t c = split; c < g.cols(); ++c) {
              (*gb)(r, c - split) += g(r, c);
            }
          }
        }
      });
  Matrix* out = nodes_[id].value;
  for (size_t r = 0; r < av.rows(); ++r) {
    for (size_t c = 0; c < av.cols(); ++c) {
      (*out)(r, c) = av(r, c);
    }
    for (size_t c = 0; c < bv.cols(); ++c) {
      (*out)(r, av.cols() + c) = bv(r, c);
    }
  }
  return Var(this, id);
}

Var Tape::ConcatRows(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  RPAS_CHECK(av.cols() == bv.cols()) << "concat-rows col mismatch";
  size_t id = NewArenaNode(
      av.rows() + bv.rows(), av.cols(), RequiresGrad(a) || RequiresGrad(b),
      [ai, bi](const Matrix& g, Tape* t) {
        const size_t split = t->ValueOf(ai).rows();
        if (Matrix* ga = t->GradFor(ai)) {
          for (size_t r = 0; r < split; ++r) {
            for (size_t c = 0; c < g.cols(); ++c) {
              (*ga)(r, c) += g(r, c);
            }
          }
        }
        if (Matrix* gb = t->GradFor(bi)) {
          for (size_t r = split; r < g.rows(); ++r) {
            for (size_t c = 0; c < g.cols(); ++c) {
              (*gb)(r - split, c) += g(r, c);
            }
          }
        }
      });
  Matrix* out = nodes_[id].value;
  for (size_t r = 0; r < av.rows(); ++r) {
    for (size_t c = 0; c < av.cols(); ++c) {
      (*out)(r, c) = av(r, c);
    }
  }
  for (size_t r = 0; r < bv.rows(); ++r) {
    for (size_t c = 0; c < bv.cols(); ++c) {
      (*out)(av.rows() + r, c) = bv(r, c);
    }
  }
  return Var(this, id);
}

Var Tape::SliceCols(Var a, size_t begin, size_t end) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  RPAS_CHECK(begin <= end && end <= av.cols()) << "column slice out of range";
  size_t id = NewArenaNode(av.rows(), end - begin, RequiresGrad(a),
                           [ai, begin](const Matrix& g, Tape* t) {
                             if (Matrix* ga = t->GradFor(ai)) {
                               for (size_t r = 0; r < g.rows(); ++r) {
                                 for (size_t c = 0; c < g.cols(); ++c) {
                                   (*ga)(r, begin + c) += g(r, c);
                                 }
                               }
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t r = 0; r < av.rows(); ++r) {
    for (size_t c = begin; c < end; ++c) {
      (*out)(r, c - begin) = av(r, c);
    }
  }
  return Var(this, id);
}

Var Tape::SliceRows(Var a, size_t begin, size_t end) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  RPAS_CHECK(begin <= end && end <= av.rows()) << "row slice out of range";
  size_t id = NewArenaNode(end - begin, av.cols(), RequiresGrad(a),
                           [ai, begin](const Matrix& g, Tape* t) {
                             if (Matrix* ga = t->GradFor(ai)) {
                               for (size_t r = 0; r < g.rows(); ++r) {
                                 for (size_t c = 0; c < g.cols(); ++c) {
                                   (*ga)(begin + r, c) += g(r, c);
                                 }
                               }
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t r = begin; r < end; ++r) {
    for (size_t c = 0; c < av.cols(); ++c) {
      (*out)(r - begin, c) = av(r, c);
    }
  }
  return Var(this, id);
}

Var Tape::Reshape(Var a, size_t rows, size_t cols) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  RPAS_CHECK(rows * cols == av.size()) << "Reshape size mismatch";
  size_t id = NewArenaNode(rows, cols, RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             // Row-major reshape is a flat copy, so the
                             // gradient scatters straight through.
                             if (Matrix* ga = t->GradFor(ai)) {
                               for (size_t i = 0; i < g.size(); ++i) {
                                 (*ga)[i] += g[i];
                               }
                             }
                           });
  Matrix* out = nodes_[id].value;
  for (size_t i = 0; i < av.size(); ++i) {
    (*out)[i] = av[i];
  }
  return Var(this, id);
}

Var Tape::Sum(Var a) {
  const size_t ai = a.id();
  const Matrix& av = a.value();
  size_t id = NewArenaNode(1, 1, RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             const double gval = g(0, 0);
                             if (Matrix* ga = t->GradFor(ai)) {
                               for (size_t i = 0; i < ga->size(); ++i) {
                                 (*ga)[i] += gval;
                               }
                             }
                           });
  (*nodes_[id].value)(0, 0) = ops::Sum(av);
  return Var(this, id);
}

Var Tape::Mean(Var a) {
  const size_t n = a.value().size();
  RPAS_CHECK(n > 0) << "Mean of empty matrix";
  return Scale(Sum(a), 1.0 / static_cast<double>(n));
}

Var Tape::Custom(
    const std::vector<Var>& inputs, Matrix value,
    std::function<void(const Matrix& grad_out, Tape* tape)> backward) {
  bool rg = false;
  for (Var v : inputs) {
    RPAS_CHECK(v.tape() == this) << "Custom op input from another tape";
    rg = rg || RequiresGrad(v);
  }
  size_t id = NewNode(rg, std::move(backward));
  Matrix* slot = arena_.Acquire(0, 0);
  *slot = std::move(value);
  nodes_[id].value = slot;
  nodes_[id].grad = arena_.Acquire(slot->rows(), slot->cols());
  return Var(this, id);
}

Var Tape::AllocNode(
    size_t rows, size_t cols, bool requires_grad,
    std::function<void(const Matrix& grad_out, Tape* tape)> backward,
    Matrix** value_out) {
  RPAS_CHECK(value_out != nullptr);
  size_t id = NewArenaNode(rows, cols, requires_grad, std::move(backward));
  *value_out = nodes_[id].value;
  return Var(this, id);
}

void Tape::Backward(Var loss) {
  RPAS_CHECK(loss.tape() == this) << "Backward on foreign Var";
  RPAS_CHECK(loss.value().rows() == 1 && loss.value().cols() == 1)
      << "Backward requires a 1x1 (scalar) loss";
  (*nodes_[loss.id()].grad)(0, 0) = 1.0;
  for (size_t i = loss.id() + 1; i-- > 0;) {
    Node& node = nodes_[i];
    if (!node.requires_grad || !node.backward) {
      continue;
    }
    node.backward(*node.grad, this);
  }
  // Export accumulated gradients into bound parameters.
  for (const auto& [param, id] : param_nodes_) {
    ops::Axpy(1.0, *nodes_[id].grad, &param->grad);
  }
}

}  // namespace rpas::autodiff
