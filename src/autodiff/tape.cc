#include "autodiff/tape.h"

#include <cmath>
#include <utility>

#include "tensor/ops.h"

namespace rpas::autodiff {

namespace ops = ::rpas::tensor;

const Matrix& Var::value() const {
  RPAS_CHECK(tape_ != nullptr) << "value() on default-constructed Var";
  return tape_->ValueOf(id_);
}

const Matrix& Var::grad() const {
  RPAS_CHECK(tape_ != nullptr) << "grad() on default-constructed Var";
  return tape_->GradOf(id_);
}

const Matrix& Tape::ValueOf(size_t id) const {
  RPAS_DCHECK(id < nodes_.size());
  return nodes_[id].value;
}

const Matrix& Tape::GradOf(size_t id) const {
  RPAS_DCHECK(id < nodes_.size());
  return nodes_[id].grad;
}

size_t Tape::AddNode(Matrix value, bool requires_grad,
                     std::function<void(const Matrix&, Tape*)> backward) {
  Node node;
  node.grad = Matrix(value.rows(), value.cols());
  node.value = std::move(value);
  node.requires_grad = requires_grad;
  node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

bool Tape::RequiresGrad(Var v) const {
  RPAS_DCHECK(v.tape() == this);
  return nodes_[v.id()].requires_grad;
}

void Tape::AccumulateGrad(size_t id, const Matrix& g) {
  RPAS_DCHECK(id < nodes_.size());
  if (!nodes_[id].requires_grad) {
    return;
  }
  ops::Axpy(1.0, g, &nodes_[id].grad);
}

Var Tape::Constant(Matrix value) {
  return Var(this, AddNode(std::move(value), /*requires_grad=*/false, nullptr));
}

Var Tape::Bind(Parameter* param) {
  RPAS_CHECK(param != nullptr);
  auto it = param_nodes_.find(param);
  if (it != param_nodes_.end()) {
    return Var(this, it->second);
  }
  size_t id = AddNode(param->value, /*requires_grad=*/true, nullptr);
  nodes_[id].bound_param = param;
  param_nodes_[param] = id;
  return Var(this, id);
}

Var Tape::MatMul(Var a, Var b) {
  Matrix value = ops::MatMul(a.value(), b.value());
  const size_t ai = a.id();
  const size_t bi = b.id();
  const bool rg = RequiresGrad(a) || RequiresGrad(b);
  return Var(this, AddNode(std::move(value), rg,
                           [ai, bi](const Matrix& g, Tape* t) {
                             // dA = g * B^T ; dB = A^T * g
                             if (t->nodes_[ai].requires_grad) {
                               t->AccumulateGrad(
                                   ai, ops::MatMul(g, ops::Transpose(
                                                          t->ValueOf(bi))));
                             }
                             if (t->nodes_[bi].requires_grad) {
                               t->AccumulateGrad(
                                   bi, ops::MatMul(
                                           ops::Transpose(t->ValueOf(ai)), g));
                             }
                           }));
}

Var Tape::Transpose(Var a) {
  const size_t ai = a.id();
  return Var(this, AddNode(ops::Transpose(a.value()), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, ops::Transpose(g));
                           }));
}

Var Tape::Add(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  return Var(this, AddNode(ops::Add(a.value(), b.value()),
                           RequiresGrad(a) || RequiresGrad(b),
                           [ai, bi](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, g);
                             t->AccumulateGrad(bi, g);
                           }));
}

Var Tape::Sub(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  return Var(this, AddNode(ops::Sub(a.value(), b.value()),
                           RequiresGrad(a) || RequiresGrad(b),
                           [ai, bi](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, g);
                             t->AccumulateGrad(bi, ops::Scale(g, -1.0));
                           }));
}

Var Tape::Mul(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  return Var(this, AddNode(ops::Mul(a.value(), b.value()),
                           RequiresGrad(a) || RequiresGrad(b),
                           [ai, bi](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai,
                                               ops::Mul(g, t->ValueOf(bi)));
                             t->AccumulateGrad(bi,
                                               ops::Mul(g, t->ValueOf(ai)));
                           }));
}

Var Tape::Div(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  return Var(
      this,
      AddNode(ops::Div(a.value(), b.value()),
              RequiresGrad(a) || RequiresGrad(b),
              [ai, bi](const Matrix& g, Tape* t) {
                const Matrix& bv = t->ValueOf(bi);
                t->AccumulateGrad(ai, ops::Div(g, bv));
                // d/db (a/b) = -a / b^2
                Matrix gb = ops::Mul(g, t->ValueOf(ai));
                for (size_t i = 0; i < gb.size(); ++i) {
                  gb[i] = -gb[i] / (bv[i] * bv[i]);
                }
                t->AccumulateGrad(bi, gb);
              }));
}

Var Tape::Max(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  RPAS_CHECK(av.SameShape(bv)) << "Max shape mismatch";
  Matrix value(av.rows(), av.cols());
  for (size_t i = 0; i < value.size(); ++i) {
    value[i] = av[i] >= bv[i] ? av[i] : bv[i];
  }
  return Var(
      this, AddNode(std::move(value), RequiresGrad(a) || RequiresGrad(b),
                    [ai, bi](const Matrix& g, Tape* t) {
                      const Matrix& av2 = t->ValueOf(ai);
                      const Matrix& bv2 = t->ValueOf(bi);
                      Matrix ga(g.rows(), g.cols());
                      Matrix gb(g.rows(), g.cols());
                      for (size_t i = 0; i < g.size(); ++i) {
                        if (av2[i] >= bv2[i]) {
                          ga[i] = g[i];
                        } else {
                          gb[i] = g[i];
                        }
                      }
                      t->AccumulateGrad(ai, ga);
                      t->AccumulateGrad(bi, gb);
                    }));
}

Var Tape::AddRowBroadcast(Var a, Var row) {
  const size_t ai = a.id();
  const size_t ri = row.id();
  return Var(this, AddNode(ops::AddRowBroadcast(a.value(), row.value()),
                           RequiresGrad(a) || RequiresGrad(row),
                           [ai, ri](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, g);
                             t->AccumulateGrad(ri, ops::ColSums(g));
                           }));
}

Var Tape::MulRowBroadcast(Var a, Var row) {
  const size_t ai = a.id();
  const size_t ri = row.id();
  const Matrix& av = a.value();
  const Matrix& rv = row.value();
  RPAS_CHECK(rv.rows() == 1 && rv.cols() == av.cols())
      << "MulRowBroadcast shape mismatch";
  Matrix value(av.rows(), av.cols());
  for (size_t r = 0; r < av.rows(); ++r) {
    for (size_t c = 0; c < av.cols(); ++c) {
      value(r, c) = av(r, c) * rv(0, c);
    }
  }
  return Var(
      this,
      AddNode(std::move(value), RequiresGrad(a) || RequiresGrad(row),
              [ai, ri](const Matrix& g, Tape* t) {
                const Matrix& av2 = t->ValueOf(ai);
                const Matrix& rv2 = t->ValueOf(ri);
                Matrix ga(g.rows(), g.cols());
                Matrix gr(1, rv2.cols());
                for (size_t r = 0; r < g.rows(); ++r) {
                  for (size_t c = 0; c < g.cols(); ++c) {
                    ga(r, c) = g(r, c) * rv2(0, c);
                    gr(0, c) += g(r, c) * av2(r, c);
                  }
                }
                t->AccumulateGrad(ai, ga);
                t->AccumulateGrad(ri, gr);
              }));
}

Var Tape::Scale(Var a, double s) {
  const size_t ai = a.id();
  return Var(this, AddNode(ops::Scale(a.value(), s), RequiresGrad(a),
                           [ai, s](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, ops::Scale(g, s));
                           }));
}

Var Tape::AddScalar(Var a, double s) {
  const size_t ai = a.id();
  return Var(this, AddNode(ops::AddScalar(a.value(), s), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai, g);
                           }));
}

Var Tape::Neg(Var a) { return Scale(a, -1.0); }

Var Tape::Tanh(Var a) {
  const size_t ai = a.id();
  Matrix value = ops::Map(a.value(), [](double x) { return std::tanh(x); });
  size_t id = AddNode(std::move(value), RequiresGrad(a), nullptr);
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    Matrix ga(g.rows(), g.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      ga[i] = g[i] * (1.0 - y[i] * y[i]);
    }
    t->AccumulateGrad(ai, ga);
  };
  return Var(this, id);
}

Var Tape::Sigmoid(Var a) {
  const size_t ai = a.id();
  Matrix value = ops::Map(a.value(), [](double x) {
    return x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                    : std::exp(x) / (1.0 + std::exp(x));
  });
  size_t id = AddNode(std::move(value), RequiresGrad(a), nullptr);
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    Matrix ga(g.rows(), g.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      ga[i] = g[i] * y[i] * (1.0 - y[i]);
    }
    t->AccumulateGrad(ai, ga);
  };
  return Var(this, id);
}

Var Tape::Relu(Var a) {
  const size_t ai = a.id();
  Matrix value = ops::Map(a.value(), [](double x) { return x > 0.0 ? x : 0.0; });
  return Var(this, AddNode(std::move(value), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             const Matrix& x = t->ValueOf(ai);
                             Matrix ga(g.rows(), g.cols());
                             for (size_t i = 0; i < g.size(); ++i) {
                               ga[i] = x[i] > 0.0 ? g[i] : 0.0;
                             }
                             t->AccumulateGrad(ai, ga);
                           }));
}

Var Tape::Softplus(Var a) {
  const size_t ai = a.id();
  Matrix value = ops::Map(a.value(), [](double x) {
    // Stable: log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}).
    return (x > 0.0 ? x : 0.0) + std::log1p(std::exp(-std::fabs(x)));
  });
  return Var(this, AddNode(std::move(value), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             const Matrix& x = t->ValueOf(ai);
                             Matrix ga(g.rows(), g.cols());
                             for (size_t i = 0; i < g.size(); ++i) {
                               // d softplus / dx = sigmoid(x)
                               double s = x[i] >= 0.0
                                              ? 1.0 / (1.0 + std::exp(-x[i]))
                                              : std::exp(x[i]) /
                                                    (1.0 + std::exp(x[i]));
                               ga[i] = g[i] * s;
                             }
                             t->AccumulateGrad(ai, ga);
                           }));
}

Var Tape::Exp(Var a) {
  const size_t ai = a.id();
  Matrix value = ops::Map(a.value(), [](double x) { return std::exp(x); });
  size_t id = AddNode(std::move(value), RequiresGrad(a), nullptr);
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    t->AccumulateGrad(ai, ops::Mul(g, t->ValueOf(id)));
  };
  return Var(this, id);
}

Var Tape::Log(Var a) {
  const size_t ai = a.id();
  Matrix value = ops::Map(a.value(), [](double x) { return std::log(x); });
  return Var(this, AddNode(std::move(value), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             t->AccumulateGrad(ai,
                                               ops::Div(g, t->ValueOf(ai)));
                           }));
}

Var Tape::Square(Var a) {
  const size_t ai = a.id();
  Matrix value = ops::Map(a.value(), [](double x) { return x * x; });
  return Var(this, AddNode(std::move(value), RequiresGrad(a),
                           [ai](const Matrix& g, Tape* t) {
                             Matrix ga = ops::Mul(g, t->ValueOf(ai));
                             t->AccumulateGrad(ai, ops::Scale(ga, 2.0));
                           }));
}

Var Tape::Sqrt(Var a) {
  const size_t ai = a.id();
  Matrix value = ops::Map(a.value(), [](double x) { return std::sqrt(x); });
  size_t id = AddNode(std::move(value), RequiresGrad(a), nullptr);
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    Matrix ga(g.rows(), g.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      ga[i] = g[i] * 0.5 / y[i];
    }
    t->AccumulateGrad(ai, ga);
  };
  return Var(this, id);
}

Var Tape::SoftmaxRows(Var a) {
  const size_t ai = a.id();
  const Matrix& x = a.value();
  Matrix value(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    double mx = -1e300;
    for (size_t c = 0; c < x.cols(); ++c) {
      mx = std::max(mx, x(r, c));
    }
    double z = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) {
      value(r, c) = std::exp(x(r, c) - mx);
      z += value(r, c);
    }
    for (size_t c = 0; c < x.cols(); ++c) {
      value(r, c) /= z;
    }
  }
  size_t id = AddNode(std::move(value), RequiresGrad(a), nullptr);
  nodes_[id].backward = [ai, id](const Matrix& g, Tape* t) {
    const Matrix& y = t->ValueOf(id);
    Matrix ga(g.rows(), g.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      double dot = 0.0;
      for (size_t c = 0; c < g.cols(); ++c) {
        dot += g(r, c) * y(r, c);
      }
      for (size_t c = 0; c < g.cols(); ++c) {
        ga(r, c) = y(r, c) * (g(r, c) - dot);
      }
    }
    t->AccumulateGrad(ai, ga);
  };
  return Var(this, id);
}

Var Tape::ConcatCols(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const size_t split = a.value().cols();
  return Var(this,
             AddNode(ops::ConcatCols(a.value(), b.value()),
                     RequiresGrad(a) || RequiresGrad(b),
                     [ai, bi, split](const Matrix& g, Tape* t) {
                       t->AccumulateGrad(ai, ops::SliceCols(g, 0, split));
                       t->AccumulateGrad(
                           bi, ops::SliceCols(g, split, g.cols()));
                     }));
}

Var Tape::ConcatRows(Var a, Var b) {
  const size_t ai = a.id();
  const size_t bi = b.id();
  const size_t split = a.value().rows();
  return Var(this,
             AddNode(ops::ConcatRows(a.value(), b.value()),
                     RequiresGrad(a) || RequiresGrad(b),
                     [ai, bi, split](const Matrix& g, Tape* t) {
                       t->AccumulateGrad(ai, ops::SliceRows(g, 0, split));
                       t->AccumulateGrad(
                           bi, ops::SliceRows(g, split, g.rows()));
                     }));
}

Var Tape::SliceCols(Var a, size_t begin, size_t end) {
  const size_t ai = a.id();
  const size_t total = a.value().cols();
  return Var(this, AddNode(ops::SliceCols(a.value(), begin, end),
                           RequiresGrad(a),
                           [ai, begin, total](const Matrix& g, Tape* t) {
                             Matrix ga(g.rows(), total);
                             for (size_t r = 0; r < g.rows(); ++r) {
                               for (size_t c = 0; c < g.cols(); ++c) {
                                 ga(r, begin + c) = g(r, c);
                               }
                             }
                             t->AccumulateGrad(ai, ga);
                           }));
}

Var Tape::SliceRows(Var a, size_t begin, size_t end) {
  const size_t ai = a.id();
  const size_t total = a.value().rows();
  return Var(this, AddNode(ops::SliceRows(a.value(), begin, end),
                           RequiresGrad(a),
                           [ai, begin, total](const Matrix& g, Tape* t) {
                             Matrix ga(total, g.cols());
                             for (size_t r = 0; r < g.rows(); ++r) {
                               for (size_t c = 0; c < g.cols(); ++c) {
                                 ga(begin + r, c) = g(r, c);
                               }
                             }
                             t->AccumulateGrad(ai, ga);
                           }));
}

Var Tape::Reshape(Var a, size_t rows, size_t cols) {
  const size_t ai = a.id();
  const size_t orig_rows = a.value().rows();
  const size_t orig_cols = a.value().cols();
  return Var(this,
             AddNode(a.value().Reshaped(rows, cols), RequiresGrad(a),
                     [ai, orig_rows, orig_cols](const Matrix& g, Tape* t) {
                       t->AccumulateGrad(ai, g.Reshaped(orig_rows, orig_cols));
                     }));
}

Var Tape::Sum(Var a) {
  const size_t ai = a.id();
  const size_t rows = a.value().rows();
  const size_t cols = a.value().cols();
  Matrix value(1, 1);
  value(0, 0) = ops::Sum(a.value());
  return Var(this, AddNode(std::move(value), RequiresGrad(a),
                           [ai, rows, cols](const Matrix& g, Tape* t) {
                             Matrix ga(rows, cols, g(0, 0));
                             t->AccumulateGrad(ai, ga);
                           }));
}

Var Tape::Mean(Var a) {
  const size_t n = a.value().size();
  RPAS_CHECK(n > 0) << "Mean of empty matrix";
  return Scale(Sum(a), 1.0 / static_cast<double>(n));
}

Var Tape::Custom(
    const std::vector<Var>& inputs, Matrix value,
    std::function<void(const Matrix& grad_out, Tape* tape)> backward) {
  bool rg = false;
  for (Var v : inputs) {
    RPAS_CHECK(v.tape() == this) << "Custom op input from another tape";
    rg = rg || RequiresGrad(v);
  }
  return Var(this, AddNode(std::move(value), rg, std::move(backward)));
}

void Tape::Backward(Var loss) {
  RPAS_CHECK(loss.tape() == this) << "Backward on foreign Var";
  RPAS_CHECK(loss.value().rows() == 1 && loss.value().cols() == 1)
      << "Backward requires a 1x1 (scalar) loss";
  nodes_[loss.id()].grad(0, 0) = 1.0;
  for (size_t i = loss.id() + 1; i-- > 0;) {
    Node& node = nodes_[i];
    if (!node.requires_grad || !node.backward) {
      continue;
    }
    node.backward(node.grad, this);
  }
  // Export accumulated gradients into bound parameters.
  for (const auto& [param, id] : param_nodes_) {
    ops::Axpy(1.0, nodes_[id].grad, &param->grad);
  }
}

}  // namespace rpas::autodiff
