#ifndef RPAS_CORE_ONLINE_LOOP_H_
#define RPAS_CORE_ONLINE_LOOP_H_

#include <vector>

#include "common/result.h"
#include "core/manager.h"
#include "simdb/cluster.h"
#include "ts/time_series.h"

namespace rpas::core {

/// Configuration of the online auto-scaling loop.
struct OnlineLoopOptions {
  /// Steps between re-planning events; 0 = the forecaster's full horizon.
  size_t replan_every = 0;
  /// Cluster simulator configuration (node capacity should equal the
  /// scaling config's theta so the simulator's threshold semantics match).
  simdb::Cluster::Options cluster;
};

/// Outcome of an online run.
struct OnlineLoopResult {
  /// Node allocation actually applied at each step.
  std::vector<int> allocation;
  /// Per-step cluster observations.
  std::vector<simdb::StepStats> steps;
  /// Analytic provisioning rates against realized workload (paper §IV-C).
  double under_provision_rate = 0.0;
  double over_provision_rate = 0.0;
  /// Realized (simulator) outcomes.
  double mean_utilization = 0.0;
  double slo_violation_rate = 0.0;
  int64_t total_node_steps = 0;
  int scale_events = 0;
  int direction_changes = 0;
  /// Number of forecasting/planning rounds executed.
  size_t plans_made = 0;
  /// Mean per-step forecast uncertainty U across all plans.
  double mean_uncertainty = 0.0;
};

/// Runs the full deployment loop of paper Fig. 2 *online*: at every
/// re-planning point the manager forecasts from the history observed so
/// far and produces a node plan; the plan drives the disaggregated-database
/// cluster simulator step by step while realized workload arrives. This is
/// the closed-loop counterpart of the open-loop evaluators in evaluator.h.
///
/// `series` must contain at least `eval_start + num_steps` observations and
/// `eval_start` must leave enough history for the forecaster's context.
Result<OnlineLoopResult> RunOnlineLoop(const RobustAutoScalingManager& manager,
                                       const ts::TimeSeries& series,
                                       size_t eval_start, size_t num_steps,
                                       const OnlineLoopOptions& options);

}  // namespace rpas::core

#endif  // RPAS_CORE_ONLINE_LOOP_H_
