#ifndef RPAS_CORE_ONLINE_LOOP_H_
#define RPAS_CORE_ONLINE_LOOP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/manager.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "select/classifier.h"
#include "select/prescaler.h"
#include "select/selector.h"
#include "simdb/cluster.h"
#include "simdb/faults.h"
#include "stream/refresher.h"
#include "ts/time_series.h"

namespace rpas::core {

/// Graceful-degradation policy for forecaster/planner faults inside the
/// online loop (paper §IV-C robustness story, generalized): a faulted
/// planning round is retried a bounded number of times; if the fault
/// outlasts the retries the loop falls back to a conservative reactive
/// plan derived from the last known-good allocation and recently observed
/// workload, and re-attempts a fresh forecast a few steps later. The loop
/// never aborts because of an injected fault.
struct DegradationPolicy {
  /// Failed planning attempts absorbed per round before falling back.
  int max_retries = 2;
  /// Steps a fallback plan covers before the next planning attempt.
  size_t fallback_plan_steps = 6;
  /// Trailing observed-workload window feeding the reactive fallback.
  size_t reactive_window = 6;
  /// Head-room multiplier on the observed peak while running blind.
  double reactive_safety_margin = 1.2;
};

/// How the loop keeps the forecaster current while workload streams in.
enum class RefreshMode {
  /// Re-plan from the full observed history each round, model state frozen
  /// between rounds — byte-for-byte the pre-streaming loop.
  kBatch = 0,
  /// Points flow through a stream::IngestRing; each planning round first
  /// folds the new points into the forecaster via an IncrementalRefresher
  /// (O(new points) per round), then plans from the observed history.
  kIncremental = 1,
};

/// Streaming-ingestion configuration (inert in kBatch mode).
struct StreamingOptions {
  RefreshMode refresh_mode = RefreshMode::kBatch;
  /// The forecaster to refresh incrementally. Required (non-null) in
  /// kIncremental mode; it must be the same model the manager plans with
  /// and must already be fitted. Non-const because refreshing mutates it.
  forecast::Forecaster* refresh_target = nullptr;
  /// Ingest ring capacity (points). When the loop outruns consumption the
  /// ring drops oldest and the refresher resyncs from history.
  size_t ring_capacity = 4096;
  stream::RefresherOptions refresher;
};

/// Whether the loop routes planning through the adaptive selection layer.
enum class SelectionMode {
  /// Plan with the `manager` argument every round — byte-for-byte the
  /// pre-selection loop.
  kOff = 0,
  /// Classify the workload, seed a tier on the candidate ladder, then
  /// promote/demote per round on rolling wQL + fault counters, and merge
  /// the PreScaler floor into every step's decision.
  kAdaptive = 1,
};

/// Adaptive model-selection configuration (inert in kOff mode).
struct SelectionOptions {
  SelectionMode mode = SelectionMode::kOff;
  /// Candidate managers, cheapest first (e.g. seasonal-naive -> ARIMA ->
  /// MLP -> DeepAR). Required non-empty in kAdaptive mode; entries must
  /// outlive the run. All entries should share one ScalingConfig — the
  /// degradation fallback still derives from the `manager` argument.
  std::vector<const RobustAutoScalingManager*> ladder;
  select::ClassifierOptions classifier;
  /// `selector.ladder_size` is overwritten with `ladder.size()`.
  select::SelectorOptions selector;
  /// TRUE pre-scaling: raise the capacity floor ahead of predicted spikes
  /// with auto-rollback. Off leaves decisions untouched.
  bool prescale = true;
  select::PreScalerOptions prescaler;
};

/// Configuration of the online auto-scaling loop.
struct OnlineLoopOptions {
  /// Steps between re-planning events; 0 = the forecaster's full horizon.
  size_t replan_every = 0;
  /// Cluster simulator configuration (node capacity should equal the
  /// scaling config's theta so the simulator's threshold semantics match).
  simdb::Cluster::Options cluster;
  /// Deterministic fault schedule. The default (all-zero) plan is inert:
  /// the loop byte-for-byte reproduces its fault-free behavior.
  simdb::FaultPlan faults;
  /// Recovery behavior under forecaster/planner faults.
  DegradationPolicy degradation;
  /// Metrics sink for the loop's `online.*` counters; null routes to
  /// obs::MetricsRegistry::Global(). The counters are bulk-incremented from
  /// the finished OnlineLoopResult, so registry values agree exactly with
  /// the result fields — and, like them, are deterministic given seeds.
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace sink for the "online.run" / "online.plan" spans; null routes to
  /// obs::TraceBuffer::Global().
  obs::TraceBuffer* trace = nullptr;
  /// Streaming ingestion / incremental-refresh configuration. The default
  /// (kBatch) leaves the loop bit-identical to the pre-streaming code path.
  StreamingOptions streaming;
  /// Adaptive model selection + pre-scaling. The default (kOff) leaves the
  /// loop bit-identical to the pre-selection code path. kAdaptive cannot be
  /// combined with RefreshMode::kIncremental (the refresher holds state for
  /// exactly one model; the ladder switches models between rounds).
  SelectionOptions selection;
};

/// Outcome of an online run.
struct OnlineLoopResult {
  /// Node allocation actually applied at each step.
  std::vector<int> allocation;
  /// Per-step cluster observations.
  std::vector<simdb::StepStats> steps;
  /// Analytic provisioning rates against realized workload (paper §IV-C).
  double under_provision_rate = 0.0;
  double over_provision_rate = 0.0;
  /// Realized (simulator) outcomes.
  double mean_utilization = 0.0;
  double slo_violation_rate = 0.0;
  int64_t total_node_steps = 0;
  int scale_events = 0;
  int direction_changes = 0;
  /// Number of forecasting/planning rounds executed (including degraded
  /// rounds served by a stale or fallback plan).
  size_t plans_made = 0;
  /// Mean per-step forecast uncertainty U across all successful plans.
  double mean_uncertainty = 0.0;

  /// Per-step fault/recovery event log (empty without a fault plan).
  std::vector<simdb::FaultEvent> fault_events;
  /// Planning rounds hit by a forecaster fault (timeout or NaN).
  size_t forecaster_faults = 0;
  /// Rounds recovered via bounded retry.
  size_t retried_plans = 0;
  /// Rounds degraded to a reactive / last-known-good fallback plan.
  size_t fallback_plans = 0;
  /// Rounds served a stale (cached previous) forecast.
  size_t stale_plans = 0;
  /// Steps with at least one active injected fault.
  size_t faulted_steps = 0;
  /// Steps executed under a fallback plan (degraded operation).
  size_t degraded_steps = 0;

  // --- Refresh/plan latency attribution (satellite of ISSUE 8) -----------
  // Wall-clock values; unlike everything above they are NOT deterministic
  // across runs. Lengths equal plans_made.
  /// Per-round planning wall time (PlanNext / stale replay / fallback).
  std::vector<double> round_plan_millis;
  /// Per-round streaming-refresh wall time (empty in kBatch mode).
  std::vector<double> round_refresh_millis;
  double total_plan_millis = 0.0;
  double total_refresh_millis = 0.0;

  // --- Streaming ingest accounting (zero in kBatch mode) -----------------
  /// Points pushed into the ingest ring.
  uint64_t points_ingested = 0;
  /// Points still queued at the (stalled) producer when the run ended.
  uint64_t points_pending = 0;
  /// Points the ring dropped (overwritten before any consumer read them).
  uint64_t points_dropped = 0;
  /// Steps whose ingest was suppressed by an injected producer stall.
  size_t ingest_stall_steps = 0;
  /// Burst flushes after a stall cleared.
  size_t ingest_bursts = 0;
  /// Refresher dispatch accounting (what each refresh round did).
  stream::RefreshStats refresh;

  // --- Adaptive selection outcome (inert fields in kOff mode) ------------
  struct SelectionOutcome {
    bool enabled = false;
    /// Ladder tier the run ended on (0 = cheapest).
    size_t final_tier = 0;
    /// Workload pattern of the classifier's window at the end of the run.
    select::WorkloadPattern pattern = select::WorkloadPattern::kInsufficient;
    /// Tier active on each planning round; length == plans_made.
    std::vector<size_t> tier_by_round;
    /// Rolling mean wQL of the active model at the end of the run.
    double rolling_wql = 0.0;
    select::SelectorStats selector;
    select::PreScalerStats prescaler;
  };
  SelectionOutcome selection;

  // --- Forecast staleness (tracked in BOTH modes) ------------------------
  /// Per-step age of the newest fresh forecast, in steps/points: 0 on the
  /// step a fresh plan lands, growing by 1 per step under stale/fallback
  /// plans. Mirrored into the "online.staleness_points" histogram.
  double mean_staleness_points = 0.0;
  uint64_t max_staleness_points = 0;
};

/// Conservative plan used while the forecaster is unavailable: hold the
/// larger of the last known-good allocation level and a reactive-max
/// requirement from recently observed workload (with head-room), and never
/// scale in below the current node count while running blind. Shared by the
/// online loop's degradation path and serve's deadline-shed fallback.
std::vector<int> BuildFallbackPlan(const std::vector<double>& recent,
                                   const std::vector<int>& last_good_plan,
                                   int current_nodes,
                                   const ScalingConfig& config,
                                   const DegradationPolicy& policy);

/// Runs the full deployment loop of paper Fig. 2 *online*: at every
/// re-planning point the manager forecasts from the history observed so
/// far and produces a node plan; the plan drives the disaggregated-database
/// cluster simulator step by step while realized workload arrives. This is
/// the closed-loop counterpart of the open-loop evaluators in evaluator.h.
///
/// Validated up front: `series` must contain at least
/// `eval_start + num_steps` observations and `eval_start` must leave at
/// least the forecaster's context length of history; violations return
/// InvalidArgument before any simulation work.
///
/// When `options.faults` is non-zero, scheduled faults are injected into
/// actuation, the cluster, and the planning path; every fault and the
/// recovery action taken is appended to `OnlineLoopResult::fault_events`.
Result<OnlineLoopResult> RunOnlineLoop(const RobustAutoScalingManager& manager,
                                       const ts::TimeSeries& series,
                                       size_t eval_start, size_t num_steps,
                                       const OnlineLoopOptions& options);

/// Flattens a finished run into per-step obs::ScalingDecision records for
/// the structured exporters (obs/export.h). `run` labels every record (use
/// it to distinguish strategies or fault rates in one export). A step's
/// `faulted` flag is true iff at least one fault event was logged for it.
std::vector<obs::ScalingDecision> CollectDecisions(
    const OnlineLoopResult& result, const std::string& run);

}  // namespace rpas::core

#endif  // RPAS_CORE_ONLINE_LOOP_H_
