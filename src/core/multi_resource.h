#ifndef RPAS_CORE_MULTI_RESOURCE_H_
#define RPAS_CORE_MULTI_RESOURCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/scaling_config.h"
#include "ts/quantile_forecast.h"

namespace rpas::core {

/// Demand trajectory for one resource dimension with its per-node
/// threshold (paper Definition 3 generalized: a compute node must satisfy
/// w_t^{(r)} / c_t <= theta^{(r)} for every resource r — CPU, memory, ...).
struct ResourceDemand {
  std::string name;               ///< "cpu", "memory", ...
  std::vector<double> workload;   ///< demand per horizon step
  double theta = 1.0;             ///< per-node capacity for this resource
};

/// Joint allocation across resource dimensions: per step, the node count is
/// the maximum of each resource's individual requirement (the binding
/// constraint wins). All demand trajectories must share one length.
/// min/max node bounds come from `config` (config.theta is ignored — each
/// resource carries its own threshold).
Result<std::vector<int>> AllocateMultiResource(
    const std::vector<ResourceDemand>& demands, const ScalingConfig& config);

/// Robust multi-resource allocation from per-resource quantile forecasts:
/// resource r contributes its tau-quantile trajectory. Forecast horizons
/// must match.
Result<std::vector<int>> AllocateMultiResourceQuantile(
    const std::vector<std::pair<ts::QuantileForecast, double>>&
        forecasts_with_theta,
    double tau, const ScalingConfig& config);

/// Index of the binding (most demanding) resource at each step, -1 when the
/// min-nodes floor binds instead. Useful for diagnosing which resource
/// drives scaling.
Result<std::vector<int>> BindingResourcePerStep(
    const std::vector<ResourceDemand>& demands, const ScalingConfig& config);

}  // namespace rpas::core

#endif  // RPAS_CORE_MULTI_RESOURCE_H_
