#ifndef RPAS_CORE_SCALING_CONFIG_H_
#define RPAS_CORE_SCALING_CONFIG_H_

#include <cmath>

namespace rpas::core {

/// Shared configuration for every auto-scaling strategy.
struct ScalingConfig {
  /// theta: maximum average workload per compute node (paper Eq. 3's
  /// predefined threshold; e.g., the workload units one node absorbs while
  /// staying at or below the target CPU percentage).
  double theta = 1.0;
  /// Lower bound on the node count (a database keeps >= 1 node).
  int min_nodes = 1;
  /// Hard cap; 0 = uncapped.
  int max_nodes = 0;
};

/// Minimum node count satisfying workload / c <= theta (with min/max
/// clamping). The integral optimum of the per-step auto-scaling problem.
inline int RequiredNodes(double workload, const ScalingConfig& config) {
  int nodes = static_cast<int>(std::ceil(workload / config.theta - 1e-9));
  if (nodes < config.min_nodes) {
    nodes = config.min_nodes;
  }
  if (config.max_nodes > 0 && nodes > config.max_nodes) {
    nodes = config.max_nodes;
  }
  return nodes;
}

}  // namespace rpas::core

#endif  // RPAS_CORE_SCALING_CONFIG_H_
