#ifndef RPAS_CORE_STRATEGIES_H_
#define RPAS_CORE_STRATEGIES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/scaling_config.h"
#include "ts/quantile_forecast.h"

namespace rpas::core {

// ---------------------------------------------------------------------------
// Reactive strategies (paper §IV-A "Resource Scalers"): moving-window
// statistics over *observed* workload — no forecasting. They decide one step
// at a time from trailing history.
// ---------------------------------------------------------------------------

/// Decides the node count for the next step from recent observed workload.
class ReactiveStrategy {
 public:
  virtual ~ReactiveStrategy() = default;

  /// `recent` holds observed workloads, oldest first (at least one value).
  virtual int Decide(const std::vector<double>& recent,
                     const ScalingConfig& config) const = 0;
  virtual std::string Name() const = 0;
};

/// Reactive-Max: scales to the maximum workload observed in the last
/// `window` steps (Autopilot-style peak provisioning).
class ReactiveMaxStrategy final : public ReactiveStrategy {
 public:
  explicit ReactiveMaxStrategy(size_t window = 6);
  int Decide(const std::vector<double>& recent,
             const ScalingConfig& config) const override;
  std::string Name() const override { return "Reactive-Max"; }

 private:
  size_t window_;
};

/// Reactive-Avg: exponentially-decaying weighted average over the last
/// `window` steps with the given half-life (paper: half-life 6 intervals —
/// "weights decrease by half every 6 time intervals").
class ReactiveAvgStrategy final : public ReactiveStrategy {
 public:
  explicit ReactiveAvgStrategy(size_t window = 6, double half_life = 6.0);
  int Decide(const std::vector<double>& recent,
             const ScalingConfig& config) const override;
  std::string Name() const override { return "Reactive-Avg"; }

 private:
  size_t window_;
  double half_life_;
};

// ---------------------------------------------------------------------------
// Forecast-based allocators: map a quantile forecast for the horizon to an
// allocation plan (paper §III-C).
// ---------------------------------------------------------------------------

/// Maps a quantile forecast to a node allocation for every horizon step.
class QuantileAllocator {
 public:
  virtual ~QuantileAllocator() = default;

  virtual Result<std::vector<int>> Allocate(
      const ts::QuantileForecast& forecast,
      const ScalingConfig& config) const = 0;
  virtual std::string Name() const = 0;
};

/// Point-forecast strategy: allocates for the median (0.5-quantile)
/// trajectory — the non-robust baseline of paper Definition 3.
class PointForecastAllocator final : public QuantileAllocator {
 public:
  PointForecastAllocator() = default;
  Result<std::vector<int>> Allocate(const ts::QuantileForecast& forecast,
                                    const ScalingConfig& config)
      const override;
  std::string Name() const override { return "Point"; }
};

/// Robust fixed-quantile strategy (paper Definition 4 / Eq. 6): allocates
/// for the tau-quantile trajectory, tau > 0.5 for conservatism.
class RobustQuantileAllocator final : public QuantileAllocator {
 public:
  explicit RobustQuantileAllocator(double tau);
  Result<std::vector<int>> Allocate(const ts::QuantileForecast& forecast,
                                    const ScalingConfig& config)
      const override;
  std::string Name() const override;
  double tau() const { return tau_; }

 private:
  double tau_;
};

/// Adaptive uncertainty-aware strategy (paper Definition 5 + Algorithm 1):
/// per step, compute the uncertainty U of the quantile forecast (Eq. 8) and
/// allocate at the optimistic level tau1 when U < rho, at the conservative
/// level tau2 otherwise. The staircase generalization takes N levels and
/// N-1 increasing thresholds.
class AdaptiveQuantileAllocator final : public QuantileAllocator {
 public:
  /// Two-level form (Algorithm 1). Requires tau1 < tau2, rho >= 0.
  AdaptiveQuantileAllocator(double tau1, double tau2, double rho);

  /// Staircase form: `levels` strictly increasing quantile levels,
  /// `thresholds` strictly increasing uncertainty cut-points with
  /// levels.size() == thresholds.size() + 1. Level i is used when
  /// U < thresholds[i] (first match), the last level otherwise.
  AdaptiveQuantileAllocator(std::vector<double> levels,
                            std::vector<double> thresholds);

  Result<std::vector<int>> Allocate(const ts::QuantileForecast& forecast,
                                    const ScalingConfig& config)
      const override;
  std::string Name() const override;

  /// Level that would be chosen for a given uncertainty value.
  double LevelForUncertainty(double uncertainty) const;

 private:
  std::vector<double> levels_;
  std::vector<double> thresholds_;
};

/// Padding enhancement for point-forecast scalers (paper §IV-A, after Shen
/// et al.'s CloudScale): adds to each prediction a margin derived from
/// recent underestimation errors of past forecasts. Stateful: feed realized
/// values back via Observe().
class PaddingEnhancement {
 public:
  struct Options {
    size_t error_window = 24;  ///< underestimation errors remembered
    double quantile = 0.9;     ///< error-distribution quantile used as pad
  };

  explicit PaddingEnhancement(Options options);

  /// Records a realized (actual, predicted) pair from a past decision.
  void Observe(double actual, double predicted);

  /// Current pad value: the configured quantile of recent positive
  /// underestimation errors (0 while no errors observed).
  double CurrentPad() const;

  /// Applies the pad to a point trajectory.
  std::vector<double> Pad(const std::vector<double>& prediction) const;

 private:
  Options options_;
  std::vector<double> errors_;  // ring buffer of positive underestimations
  size_t next_ = 0;
  bool full_ = false;
};

}  // namespace rpas::core

#endif  // RPAS_CORE_STRATEGIES_H_
