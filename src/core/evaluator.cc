#include "core/evaluator.h"

#include <algorithm>

#include "common/logging.h"

namespace rpas::core {

ProvisioningReport EvaluateAllocation(const std::vector<double>& realized,
                                      const std::vector<int>& allocation,
                                      const ScalingConfig& config) {
  RPAS_CHECK(realized.size() == allocation.size())
      << "workload/allocation length mismatch";
  ProvisioningReport report;
  report.num_steps = realized.size();
  if (realized.empty()) {
    return report;
  }
  size_t under = 0;
  size_t over = 0;
  double alloc_sum = 0.0;
  double required_sum = 0.0;
  for (size_t t = 0; t < realized.size(); ++t) {
    const int required = RequiredNodes(realized[t], config);
    if (allocation[t] < required) {
      ++under;
    } else if (allocation[t] > required) {
      ++over;
    }
    alloc_sum += allocation[t];
    required_sum += required;
  }
  const double n = static_cast<double>(realized.size());
  report.under_provision_rate = static_cast<double>(under) / n;
  report.over_provision_rate = static_cast<double>(over) / n;
  report.mean_allocated_nodes = alloc_sum / n;
  report.mean_required_nodes = required_sum / n;
  return report;
}

namespace {
Status ValidateRange(const ts::TimeSeries& series, size_t eval_start,
                     size_t num_steps) {
  if (num_steps == 0) {
    return Status::InvalidArgument("evaluation range is empty");
  }
  if (eval_start + num_steps > series.size()) {
    return Status::InvalidArgument(
        "evaluation range extends past the series");
  }
  if (eval_start == 0) {
    return Status::InvalidArgument(
        "evaluation must start after some observable history");
  }
  return Status::OK();
}
}  // namespace

Result<std::vector<int>> RunReactiveStrategy(const ReactiveStrategy& strategy,
                                             const ts::TimeSeries& series,
                                             size_t eval_start,
                                             size_t num_steps,
                                             const ScalingConfig& config) {
  RPAS_RETURN_IF_ERROR(ValidateRange(series, eval_start, num_steps));
  std::vector<int> allocation(num_steps);
  for (size_t i = 0; i < num_steps; ++i) {
    const size_t t = eval_start + i;
    // Observed history strictly before t.
    std::vector<double> recent(series.values.begin(),
                               series.values.begin() + static_cast<long>(t));
    allocation[i] = strategy.Decide(recent, config);
  }
  return allocation;
}

Result<std::vector<int>> RunPredictiveStrategy(
    const forecast::Forecaster& model, const QuantileAllocator& allocator,
    const ts::TimeSeries& series, size_t eval_start, size_t num_steps,
    const ScalingConfig& config) {
  RPAS_RETURN_IF_ERROR(ValidateRange(series, eval_start, num_steps));
  const size_t context = model.ContextLength();
  const size_t horizon = model.Horizon();
  if (eval_start < context) {
    return Status::InvalidArgument(
        "not enough history before eval_start for the model context");
  }
  std::vector<int> allocation;
  allocation.reserve(num_steps);
  for (size_t planned = 0; planned < num_steps; planned += horizon) {
    const size_t t = eval_start + planned;
    forecast::ForecastInput input;
    input.start_index = t - context;
    input.step_minutes = series.step_minutes;
    input.context.assign(
        series.values.begin() + static_cast<long>(t - context),
        series.values.begin() + static_cast<long>(t));
    RPAS_ASSIGN_OR_RETURN(ts::QuantileForecast fc, model.Predict(input));
    RPAS_ASSIGN_OR_RETURN(std::vector<int> plan,
                          allocator.Allocate(fc, config));
    const size_t take = std::min(horizon, num_steps - planned);
    allocation.insert(allocation.end(), plan.begin(),
                      plan.begin() + static_cast<long>(take));
  }
  return allocation;
}

Result<std::vector<int>> RunPaddedPointStrategy(
    const forecast::Forecaster& model, PaddingEnhancement* padding,
    const ts::TimeSeries& series, size_t eval_start, size_t num_steps,
    const ScalingConfig& config) {
  RPAS_CHECK(padding != nullptr);
  RPAS_RETURN_IF_ERROR(ValidateRange(series, eval_start, num_steps));
  const size_t context = model.ContextLength();
  const size_t horizon = model.Horizon();
  if (eval_start < context) {
    return Status::InvalidArgument(
        "not enough history before eval_start for the model context");
  }
  std::vector<int> allocation;
  allocation.reserve(num_steps);
  for (size_t planned = 0; planned < num_steps; planned += horizon) {
    const size_t t = eval_start + planned;
    forecast::ForecastInput input;
    input.start_index = t - context;
    input.step_minutes = series.step_minutes;
    input.context.assign(
        series.values.begin() + static_cast<long>(t - context),
        series.values.begin() + static_cast<long>(t));
    RPAS_ASSIGN_OR_RETURN(std::vector<double> point,
                          model.PredictPoint(input));
    const std::vector<double> padded = padding->Pad(point);
    const size_t take = std::min(horizon, num_steps - planned);
    for (size_t h = 0; h < take; ++h) {
      allocation.push_back(
          RequiredNodes(std::max(padded[h], 0.0), config));
    }
    // Feed realized outcomes of this planning window back into the pad
    // estimator (available once the window has elapsed).
    for (size_t h = 0; h < take; ++h) {
      padding->Observe(series.values[t + h], point[h]);
    }
  }
  return allocation;
}

}  // namespace rpas::core
