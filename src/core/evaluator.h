#ifndef RPAS_CORE_EVALUATOR_H_
#define RPAS_CORE_EVALUATOR_H_

#include <vector>

#include "common/result.h"
#include "core/scaling_config.h"
#include "core/strategies.h"
#include "forecast/forecaster.h"
#include "ts/time_series.h"

namespace rpas::core {

/// Provisioning outcome of an allocation plan against realized workload
/// (paper §IV-C metrics).
struct ProvisioningReport {
  /// Fraction of steps with fewer nodes than required: allocated resources
  /// fall short of actual demand (Under-Provisioning Rate).
  double under_provision_rate = 0.0;
  /// Fraction of steps with strictly more nodes than the minimum required
  /// (Over-Provisioning Rate; reflects under-utilization).
  double over_provision_rate = 0.0;
  double mean_allocated_nodes = 0.0;
  double mean_required_nodes = 0.0;
  size_t num_steps = 0;
};

/// Scores an allocation against the realized workload: step t is
/// under-provisioned when allocation[t] < RequiredNodes(workload[t]) and
/// over-provisioned when allocation[t] > RequiredNodes(workload[t]).
ProvisioningReport EvaluateAllocation(const std::vector<double>& realized,
                                      const std::vector<int>& allocation,
                                      const ScalingConfig& config);

/// Closed-loop evaluation drivers. All of them walk the evaluation range
/// [eval_start, eval_start + num_steps) of `series` and return the
/// allocation chosen for each step using only information available at
/// decision time.

/// Reactive driver: each step decided from the trailing observed workload.
Result<std::vector<int>> RunReactiveStrategy(const ReactiveStrategy& strategy,
                                             const ts::TimeSeries& series,
                                             size_t eval_start,
                                             size_t num_steps,
                                             const ScalingConfig& config);

/// Predictive driver: re-plans every `model.Horizon()` steps — at each
/// planning point the forecaster conditions on the last ContextLength()
/// observations and the allocator maps the quantile forecast to a plan.
Result<std::vector<int>> RunPredictiveStrategy(
    const forecast::Forecaster& model, const QuantileAllocator& allocator,
    const ts::TimeSeries& series, size_t eval_start, size_t num_steps,
    const ScalingConfig& config);

/// Point-forecast driver with the padding enhancement (paper §IV-A):
/// allocations use prediction + pad, and realized values are fed back into
/// the pad estimator as they arrive. `padding` carries state across calls.
Result<std::vector<int>> RunPaddedPointStrategy(
    const forecast::Forecaster& model, PaddingEnhancement* padding,
    const ts::TimeSeries& series, size_t eval_start, size_t num_steps,
    const ScalingConfig& config);

}  // namespace rpas::core

#endif  // RPAS_CORE_EVALUATOR_H_
