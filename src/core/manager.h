#ifndef RPAS_CORE_MANAGER_H_
#define RPAS_CORE_MANAGER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/scaling_config.h"
#include "core/strategies.h"
#include "forecast/forecaster.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "ts/time_series.h"

namespace rpas::core {

/// Thrashing control (paper §V-A): bounds the node-count delta per step and
/// applies a scale-in cooldown so allocations do not flap. Scale-out is
/// never delayed by the cooldown — robustness against under-provisioning
/// takes priority; only the rate of change is limited.
class ScalingSmoother {
 public:
  struct Options {
    int max_step_delta = 0;    ///< max |c_{t+1} - c_t| per step; 0 = off
    int scale_in_cooldown = 0; ///< steps to hold before shrinking again
  };

  explicit ScalingSmoother(Options options);

  /// Rewrites `plan` so consecutive steps respect the delta and cooldown,
  /// starting from `current_nodes`.
  std::vector<int> Smooth(const std::vector<int>& plan,
                          int current_nodes) const;

 private:
  Options options_;
};

/// Robust Auto-Scaling Manager (paper Fig. 2, right box): the façade that
/// couples a Probabilistic Workload Forecaster with a robust allocation
/// strategy and optional thrashing control. This is the class a deployment
/// embeds: feed it history, get a node plan for the next horizon.
class RobustAutoScalingManager {
 public:
  struct Plan {
    std::vector<int> nodes;           ///< allocation per horizon step
    ts::QuantileForecast forecast;    ///< the forecast that produced it
    std::vector<double> uncertainty;  ///< per-step U (Eq. 8)
  };

  /// Both pointers must outlive the manager.
  RobustAutoScalingManager(const forecast::Forecaster* forecaster,
                           std::unique_ptr<QuantileAllocator> allocator,
                           ScalingConfig config);

  /// Enables thrashing control.
  void SetSmoother(ScalingSmoother::Options options);

  /// Routes planning telemetry (plan counter, "manager.forecast" /
  /// "manager.allocate" spans) to the given sinks instead of the globals.
  /// Either pointer may be null to keep the global for that sink. Both must
  /// outlive the manager.
  void SetObservability(obs::MetricsRegistry* metrics,
                        obs::TraceBuffer* trace);

  /// Plans the next Horizon() steps given the observed history (must hold
  /// at least the forecaster's context length). `current_nodes` seeds the
  /// smoother when enabled. The forecast is validated before allocation: a
  /// forecaster emitting non-finite values yields Internal rather than a
  /// poisoned plan, so callers can detect and degrade (see online_loop.h).
  Result<Plan> PlanNext(const ts::TimeSeries& history,
                        int current_nodes = 1) const;

  const ScalingConfig& config() const { return config_; }

  /// Context length required from history by the underlying forecaster.
  size_t ContextLength() const;
  /// Planning horizon of the underlying forecaster.
  size_t Horizon() const;

 private:
  const forecast::Forecaster* forecaster_;  // not owned
  std::unique_ptr<QuantileAllocator> allocator_;
  ScalingConfig config_;
  std::unique_ptr<ScalingSmoother> smoother_;
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned; null = global
  obs::TraceBuffer* trace_ = nullptr;        // not owned; null = global
};

}  // namespace rpas::core

#endif  // RPAS_CORE_MANAGER_H_
