#include "core/online_loop.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/evaluator.h"

namespace rpas::core {

Result<OnlineLoopResult> RunOnlineLoop(const RobustAutoScalingManager& manager,
                                       const ts::TimeSeries& series,
                                       size_t eval_start, size_t num_steps,
                                       const OnlineLoopOptions& options) {
  if (num_steps == 0) {
    return Status::InvalidArgument("online loop needs at least one step");
  }
  if (eval_start + num_steps > series.size()) {
    return Status::InvalidArgument(
        "evaluation range extends past the series");
  }

  OnlineLoopResult result;
  result.allocation.reserve(num_steps);
  result.steps.reserve(num_steps);

  simdb::Cluster cluster(options.cluster);
  std::vector<int> current_plan;
  size_t plan_cursor = 0;
  double uncertainty_sum = 0.0;
  size_t uncertainty_n = 0;
  int current_nodes = options.cluster.initial_nodes;

  for (size_t i = 0; i < num_steps; ++i) {
    const size_t t = eval_start + i;
    const size_t replan =
        options.replan_every > 0 ? options.replan_every : SIZE_MAX;
    if (current_plan.empty() || plan_cursor >= current_plan.size() ||
        (options.replan_every > 0 && plan_cursor >= replan)) {
      // Re-plan from everything observed so far.
      ts::TimeSeries history = series.Slice(0, t);
      RPAS_ASSIGN_OR_RETURN(RobustAutoScalingManager::Plan plan,
                            manager.PlanNext(history, current_nodes));
      current_plan = std::move(plan.nodes);
      if (current_plan.empty()) {
        // Indexing an empty plan below would be out-of-bounds UB; a
        // planner that yields no steps is a contract violation.
        return Status::Internal(
            "online loop: planner returned an empty plan");
      }
      plan_cursor = 0;
      ++result.plans_made;
      for (double u : plan.uncertainty) {
        uncertainty_sum += u;
        ++uncertainty_n;
      }
    }
    const int target = current_plan[plan_cursor++];
    const double realized = series.values[t];
    simdb::StepStats stats = cluster.Step(target, realized);
    current_nodes = cluster.NumNodes();
    result.allocation.push_back(target);
    result.steps.push_back(stats);
  }

  // Aggregate outcomes.
  std::vector<double> realized(
      series.values.begin() + static_cast<long>(eval_start),
      series.values.begin() + static_cast<long>(eval_start + num_steps));
  ScalingConfig config = manager.config();
  const ProvisioningReport provisioning =
      EvaluateAllocation(realized, result.allocation, config);
  result.under_provision_rate = provisioning.under_provision_rate;
  result.over_provision_rate = provisioning.over_provision_rate;

  double util_sum = 0.0;
  size_t slo = 0;
  for (const simdb::StepStats& s : result.steps) {
    util_sum += s.avg_utilization;
    if (s.slo_violated) {
      ++slo;
    }
  }
  result.mean_utilization = util_sum / static_cast<double>(num_steps);
  result.slo_violation_rate =
      static_cast<double>(slo) / static_cast<double>(num_steps);
  result.total_node_steps = cluster.total_node_steps();
  result.scale_events = cluster.total_scale_events();
  result.direction_changes = cluster.total_direction_changes();
  result.mean_uncertainty =
      uncertainty_n > 0 ? uncertainty_sum / static_cast<double>(uncertainty_n)
                        : 0.0;
  return result;
}

}  // namespace rpas::core
