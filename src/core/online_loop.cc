#include "core/online_loop.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <unordered_set>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/evaluator.h"
#include "forecast/rolling_wql.h"
#include "stream/ring.h"
#include "ts/metrics.h"

namespace rpas::core {

std::vector<int> BuildFallbackPlan(const std::vector<double>& recent,
                                   const std::vector<int>& last_good_plan,
                                   int current_nodes,
                                   const ScalingConfig& config,
                                   const DegradationPolicy& policy) {
  double peak = 0.0;
  for (double w : recent) {
    peak = std::max(peak, w);
  }
  int hold = RequiredNodes(peak * policy.reactive_safety_margin, config);
  if (!last_good_plan.empty()) {
    hold = std::max(hold, last_good_plan.back());
  }
  hold = std::max(hold, current_nodes);
  const size_t steps = std::max<size_t>(policy.fallback_plan_steps, 1);
  return std::vector<int>(steps, hold);
}

Result<OnlineLoopResult> RunOnlineLoop(const RobustAutoScalingManager& manager,
                                       const ts::TimeSeries& series,
                                       size_t eval_start, size_t num_steps,
                                       const OnlineLoopOptions& options) {
  if (num_steps == 0) {
    return Status::InvalidArgument("online loop needs at least one step");
  }
  if (eval_start + num_steps > series.size()) {
    return Status::InvalidArgument(
        "evaluation range extends past the series");
  }
  if (eval_start < manager.ContextLength()) {
    return Status::InvalidArgument(
        "eval_start leaves less history than the forecaster's context "
        "length");
  }

  const bool streaming =
      options.streaming.refresh_mode == RefreshMode::kIncremental;
  if (streaming && options.streaming.refresh_target == nullptr) {
    return Status::InvalidArgument(
        "incremental refresh mode needs a refresh_target forecaster");
  }

  const bool selecting =
      options.selection.mode == SelectionMode::kAdaptive;
  if (selecting) {
    if (streaming) {
      return Status::InvalidArgument(
          "adaptive selection cannot be combined with incremental refresh: "
          "the refresher tracks one model, the ladder switches models");
    }
    if (options.selection.ladder.empty()) {
      return Status::InvalidArgument(
          "adaptive selection needs a non-empty candidate ladder");
    }
    for (const RobustAutoScalingManager* candidate :
         options.selection.ladder) {
      if (candidate == nullptr) {
        return Status::InvalidArgument(
            "adaptive selection ladder contains a null manager");
      }
      if (eval_start < candidate->ContextLength()) {
        return Status::InvalidArgument(
            "eval_start leaves less history than a ladder candidate's "
            "context length");
      }
    }
  }

  obs::TraceBuffer* trace = obs::ResolveTrace(options.trace);
  obs::Span run_span(trace, "online.run", static_cast<int64_t>(num_steps));

  OnlineLoopResult result;
  result.allocation.reserve(num_steps);
  result.steps.reserve(num_steps);

  // Streaming-ingest state (incremental mode only). Workload points flow
  // producer-side into the ring as they are realized; each planning round
  // polls the cursor and folds the new points into the forecaster.
  std::unique_ptr<stream::IngestRing> ring;
  std::unique_ptr<stream::StreamCursor> cursor;
  std::unique_ptr<stream::IncrementalRefresher> refresher;
  std::vector<double> stall_queue;  // points held back by a producer stall
  std::vector<double> poll_buf;
  if (streaming) {
    ring = std::make_unique<stream::IngestRing>(
        options.streaming.ring_capacity);
    cursor = std::make_unique<stream::StreamCursor>(ring.get());
    refresher = std::make_unique<stream::IncrementalRefresher>(
        options.streaming.refresh_target, options.streaming.refresher);
    RPAS_RETURN_IF_ERROR(refresher->Prime(series.Slice(0, eval_start)));
  }
  // Drift guard input: the forecast of the newest fresh plan, scored
  // against however many of its steps have realized by the next round.
  std::optional<ts::QuantileForecast> live_forecast;
  size_t live_forecast_start = eval_start;

  // Adaptive-selection state (kAdaptive only). The `active` pointer is the
  // single planning indirection: in kOff mode it stays `&manager` for the
  // whole run, so the off path is bit-identical to the pre-selection loop.
  const RobustAutoScalingManager* active = &manager;
  std::unique_ptr<select::WorkloadClassifier> classifier;
  std::unique_ptr<select::AdaptiveSelector> selector;
  std::unique_ptr<select::PreScaler> prescaler;
  std::unique_ptr<forecast::RollingWql> rolling;
  if (selecting) {
    classifier = std::make_unique<select::WorkloadClassifier>(
        options.selection.classifier);
    // Seed the pattern — and the starting tier — from observed history.
    std::vector<double> history_window(
        series.values.begin(), series.values.begin() +
            static_cast<long>(eval_start));
    classifier->PushAll(history_window);
    select::SelectorOptions selector_options = options.selection.selector;
    selector_options.ladder_size = options.selection.ladder.size();
    selector = std::make_unique<select::AdaptiveSelector>(selector_options);
    selector->SeedFromPattern(classifier->Classify());
    active = options.selection.ladder[selector->tier()];
    if (options.selection.prescale) {
      prescaler = std::make_unique<select::PreScaler>(
          options.selection.prescaler, manager.config().min_nodes);
    }
    rolling = std::make_unique<forecast::RollingWql>(
        selector_options.wql_window);
  }

  // Forecast staleness, tracked in both modes: steps since the newest
  // fresh (non-stale, non-fallback) plan landed.
  size_t last_fresh_step = 0;
  uint64_t staleness_sum = 0;
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(options.metrics);
  obs::Histogram* staleness_hist =
      metrics->GetHistogram("online.staleness_points");

  const bool inject = options.faults.Any();
  const simdb::FaultInjector injector(options.faults);
  const DegradationPolicy& policy = options.degradation;

  simdb::Cluster cluster(options.cluster);
  std::vector<int> current_plan;
  std::vector<int> last_good_plan;
  bool plan_is_fallback = false;
  size_t plan_cursor = 0;
  double uncertainty_sum = 0.0;
  size_t uncertainty_n = 0;
  int current_nodes = options.cluster.initial_nodes;

  // Trailing realized workloads feeding the reactive fallback, seeded from
  // the observed history so degradation works even on the very first round.
  std::vector<double> recent;
  const size_t window = std::max<size_t>(policy.reactive_window, 1);
  for (size_t back = std::min(window, eval_start); back > 0; --back) {
    recent.push_back(series.values[eval_start - back]);
  }

  for (size_t i = 0; i < num_steps; ++i) {
    const size_t t = eval_start + i;
    simdb::StepFaults faults;  // default: no fault
    if (inject) {
      faults = injector.FaultsForStep(i);
    }
    const size_t replan =
        options.replan_every > 0 ? options.replan_every : SIZE_MAX;
    if (current_plan.empty() || plan_cursor >= current_plan.size() ||
        (options.replan_every > 0 && plan_cursor >= replan)) {
      // ---- Planning round, with graceful degradation under faults. ----
      obs::Span plan_span(trace, "online.plan", static_cast<int64_t>(i));
      plan_is_fallback = false;
      ++result.plans_made;

      // Adaptive selection: score the expiring plan's forecast, feed the
      // selector one observed round (wQL + whether this round's degradation
      // path is about to fire), and route planning to the resulting tier.
      // Decisions are a pure function of the observed sequence — no RNG —
      // so enabling selection cannot perturb any seeded schedule.
      if (selecting) {
        double wql = 0.0;
        bool wql_valid = false;
        if (live_forecast.has_value() && t > live_forecast_start) {
          const size_t elapsed = std::min<size_t>(
              t - live_forecast_start, live_forecast->Horizon());
          const std::vector<double> actual(
              series.values.begin() +
                  static_cast<long>(live_forecast_start),
              series.values.begin() +
                  static_cast<long>(live_forecast_start + elapsed));
          wql = ts::PrefixMeanWql(*live_forecast, actual);
          wql_valid = true;
          rolling->Observe(wql);
        }
        const int about_to_fail = faults.forecaster_timeout_attempts +
                                  (faults.forecaster_nan ? 1 : 0);
        const bool round_faulted =
            inject &&
            ((faults.stale_forecast && !last_good_plan.empty()) ||
             about_to_fail > policy.max_retries);
        selector->ObserveRound(wql, wql_valid, round_faulted);
        active = options.selection.ladder[selector->tier()];
        result.selection.tier_by_round.push_back(selector->tier());
      }

      // Streaming refresh: poll the ring for points ingested since the
      // last round and fold them into the forecaster before planning.
      // A stalled producer leaves the cursor behind `t`, so the planner
      // sees (and plans from) a correspondingly shorter history.
      size_t observed_points = i;  // kBatch: everything realized so far
      if (streaming) {
        // Score the expiring plan's forecast against what realized, so the
        // refresher's drift guard can schedule a full retrain.
        if (live_forecast.has_value() && t > live_forecast_start) {
          const size_t elapsed = std::min<size_t>(
              t - live_forecast_start, live_forecast->Horizon());
          const std::vector<double> actual(
              series.values.begin() +
                  static_cast<long>(live_forecast_start),
              series.values.begin() +
                  static_cast<long>(live_forecast_start + elapsed));
          refresher->ObserveForecastLoss(
              ts::PrefixMeanWql(*live_forecast, actual));
        }
        rpas::Stopwatch refresh_watch;
        poll_buf.clear();
        const stream::StreamCursor::Batch batch = cursor->Poll(&poll_buf);
        observed_points = static_cast<size_t>(cursor->next_seq());
        const ts::TimeSeries observed =
            series.Slice(0, eval_start + observed_points);
        RPAS_ASSIGN_OR_RETURN(
            const stream::RefreshOutcome outcome,
            refresher->Refresh(observed, batch.count, batch.missed));
        (void)outcome;
        const double refresh_ms = refresh_watch.ElapsedMillis();
        result.round_refresh_millis.push_back(refresh_ms);
        result.total_refresh_millis += refresh_ms;
        metrics->GetHistogram("stream.refresh_ms", {},
                              /*deterministic=*/false)
            ->Observe(refresh_ms);
      }
      rpas::Stopwatch plan_watch;
      const int failed_attempts =
          faults.forecaster_timeout_attempts + (faults.forecaster_nan ? 1 : 0);
      if (inject && faults.stale_forecast && !last_good_plan.empty()) {
        // The forecaster served its cached previous forecast; the round
        // silently replays the last known-good plan from its start.
        current_plan = last_good_plan;
        plan_cursor = 0;
        ++result.stale_plans;
        result.fault_events.push_back(
            {i, simdb::FaultType::kStaleForecast, simdb::FaultAction::kNone,
             0, 0.0});
      } else if (inject && failed_attempts > policy.max_retries) {
        // Bounded retry exhausted: degrade instead of aborting.
        ++result.forecaster_faults;
        ++result.fallback_plans;
        const simdb::FaultAction action =
            last_good_plan.empty() ? simdb::FaultAction::kFallbackReactive
                                   : simdb::FaultAction::kFallbackLastGood;
        result.fault_events.push_back(
            {i,
             faults.forecaster_timeout_attempts > 0
                 ? simdb::FaultType::kForecasterTimeout
                 : simdb::FaultType::kForecasterNan,
             action, failed_attempts, 0.0});
        current_plan = BuildFallbackPlan(recent, last_good_plan,
                                         current_nodes, manager.config(),
                                         policy);
        plan_cursor = 0;
        plan_is_fallback = true;
      } else {
        // Either a clean round, or a faulted one whose
        // (failed_attempts + 1)-th attempt lands within the retry budget —
        // the successful attempt's output is what PlanNext returns. In
        // streaming mode the planner sees only what the stream delivered
        // (a stalled producer starves it); in batch mode that is always
        // everything realized so far, making the two modes identical when
        // no ingest faults fire.
        ts::TimeSeries history =
            series.Slice(0, eval_start + observed_points);
        auto plan_or = active->PlanNext(history, current_nodes);
        if (!plan_or.ok()) {
          if (!inject) {
            return plan_or.status();
          }
          // A genuine planner error under fault injection is handled by
          // the same degradation path: record, fall back, keep serving.
          ++result.fallback_plans;
          const simdb::FaultAction action =
              last_good_plan.empty() ? simdb::FaultAction::kFallbackReactive
                                     : simdb::FaultAction::kFallbackLastGood;
          result.fault_events.push_back({i, simdb::FaultType::kPlannerError,
                                         action, failed_attempts, 0.0});
          current_plan = BuildFallbackPlan(recent, last_good_plan,
                                           current_nodes, manager.config(),
                                           policy);
          plan_cursor = 0;
          plan_is_fallback = true;
        } else {
          RobustAutoScalingManager::Plan plan = std::move(plan_or).value();
          current_plan = std::move(plan.nodes);
          if (current_plan.empty()) {
            // Indexing an empty plan below would be out-of-bounds UB; a
            // planner that yields no steps is a contract violation.
            return Status::Internal(
                "online loop: planner returned an empty plan");
          }
          if (failed_attempts > 0) {
            ++result.forecaster_faults;
            ++result.retried_plans;
            result.fault_events.push_back(
                {i,
                 faults.forecaster_timeout_attempts > 0
                     ? simdb::FaultType::kForecasterTimeout
                     : simdb::FaultType::kForecasterNan,
                 simdb::FaultAction::kRetrySucceeded, failed_attempts, 0.0});
          }
          last_good_plan = current_plan;
          plan_cursor = 0;
          for (double u : plan.uncertainty) {
            uncertainty_sum += u;
            ++uncertainty_n;
          }
          // A genuinely fresh forecast landed: reset staleness and arm the
          // drift guard with the forecast to score next round.
          last_fresh_step = i;
          live_forecast = std::move(plan.forecast);
          live_forecast_start = t;
          if (prescaler) {
            // The fresh quantile plan is the spike predictor: schedule a
            // floor raise `lead_steps` before any predicted spike.
            prescaler->ObservePlan(current_plan, i);
          }
        }
      }
      const double plan_ms = plan_watch.ElapsedMillis();
      result.round_plan_millis.push_back(plan_ms);
      result.total_plan_millis += plan_ms;
      metrics->GetHistogram("online.plan_ms", {}, /*deterministic=*/false)
          ->Observe(plan_ms);
    }
    int target = current_plan[plan_cursor++];
    if (prescaler) {
      // Monotone merge: the pre-scale floor can only raise the decision,
      // never fight the reactive plan downward.
      target = prescaler->Merge(target, i);
    }
    const double realized = series.values[t];
    simdb::StepStats stats = cluster.Step(target, realized, faults);
    current_nodes = cluster.NumNodes();
    if (inject) {
      if (stats.nodes_delayed > 0) {
        result.fault_events.push_back(
            {i, simdb::FaultType::kActuationDelay,
             simdb::FaultAction::kNone, 0,
             static_cast<double>(stats.nodes_delayed)});
      }
      if (stats.nodes_denied > 0) {
        result.fault_events.push_back(
            {i, simdb::FaultType::kPartialScaleOut,
             simdb::FaultAction::kNone, 0,
             static_cast<double>(stats.nodes_denied)});
      }
      if (faults.crash_nodes > 0 && stats.nodes_failed > 0) {
        result.fault_events.push_back(
            {i, simdb::FaultType::kNodeCrash, simdb::FaultAction::kNone, 0,
             static_cast<double>(stats.nodes_failed)});
      }
      if (faults.workload_multiplier != 1.0) {
        result.fault_events.push_back(
            {i, simdb::FaultType::kWorkloadSpike, simdb::FaultAction::kNone,
             0, faults.workload_multiplier});
      }
      if (faults.Any()) {
        ++result.faulted_steps;
      }
      if (plan_is_fallback) {
        ++result.degraded_steps;
      }
    }
    recent.push_back(stats.workload);
    if (recent.size() > window) {
      recent.erase(recent.begin());
    }
    if (classifier) {
      classifier->Push(stats.workload);
    }
    result.allocation.push_back(target);
    result.steps.push_back(stats);

    // Forecast staleness this step: age of the newest fresh plan.
    const uint64_t staleness = static_cast<uint64_t>(i - last_fresh_step);
    staleness_sum += staleness;
    result.max_staleness_points =
        std::max(result.max_staleness_points, staleness);
    staleness_hist->Observe(static_cast<double>(staleness));

    if (streaming) {
      // Producer side: the realized point enters the stream *after* the
      // step, so the next planning round can consume it. A stalled
      // producer queues points and burst-flushes when the stall clears.
      const double point = series.values[t];
      if (faults.ingest_stalled) {
        stall_queue.push_back(point);
        ++result.ingest_stall_steps;
        result.fault_events.push_back(
            {i, simdb::FaultType::kIngestStall, simdb::FaultAction::kNone, 0,
             static_cast<double>(stall_queue.size())});
      } else {
        if (!stall_queue.empty()) {
          for (double queued : stall_queue) {
            ring->Push(queued);
            ++result.points_ingested;
          }
          ++result.ingest_bursts;
          result.fault_events.push_back(
              {i, simdb::FaultType::kIngestBurst, simdb::FaultAction::kNone,
               0, static_cast<double>(stall_queue.size())});
          stall_queue.clear();
        }
        ring->Push(point);
        ++result.points_ingested;
      }
    }
  }

  // Aggregate outcomes. Under workload-spike faults the realized demand is
  // what the cluster actually saw (stats.workload), so provisioning rates
  // report performance against the faulted workload.
  std::vector<double> realized;
  realized.reserve(num_steps);
  for (const simdb::StepStats& s : result.steps) {
    realized.push_back(s.workload);
  }
  ScalingConfig config = manager.config();
  const ProvisioningReport provisioning =
      EvaluateAllocation(realized, result.allocation, config);
  result.under_provision_rate = provisioning.under_provision_rate;
  result.over_provision_rate = provisioning.over_provision_rate;

  double util_sum = 0.0;
  size_t slo = 0;
  for (const simdb::StepStats& s : result.steps) {
    util_sum += s.avg_utilization;
    if (s.slo_violated) {
      ++slo;
    }
  }
  result.mean_utilization = util_sum / static_cast<double>(num_steps);
  result.slo_violation_rate =
      static_cast<double>(slo) / static_cast<double>(num_steps);
  result.total_node_steps = cluster.total_node_steps();
  result.scale_events = cluster.total_scale_events();
  result.direction_changes = cluster.total_direction_changes();
  result.mean_uncertainty =
      uncertainty_n > 0 ? uncertainty_sum / static_cast<double>(uncertainty_n)
                        : 0.0;
  result.mean_staleness_points =
      static_cast<double>(staleness_sum) / static_cast<double>(num_steps);
  if (streaming) {
    result.points_pending = static_cast<uint64_t>(stall_queue.size());
    // The cursor's missed count, not ring->dropped(): the tail advances
    // past already-read slots too, and only unread overwrites are losses.
    result.points_dropped = cursor->missed_total();
    result.refresh = refresher->stats();
  }
  if (selecting) {
    if (prescaler) {
      // Force rollback of any in-flight floor raise so activations always
      // balance rollbacks at the end of a run.
      prescaler->Finish();
      result.selection.prescaler = prescaler->stats();
    }
    result.selection.enabled = true;
    result.selection.final_tier = selector->tier();
    result.selection.pattern = classifier->Classify();
    result.selection.rolling_wql = rolling->Mean();
    result.selection.selector = selector->stats();
  }

  // Registry counters are bulk-incremented from the finished result, so
  // they agree *exactly* with the OnlineLoopResult fields by construction
  // (see tests/obs_test.cc) and stay deterministic across thread counts.
  metrics->GetCounter("online.steps")
      ->Increment(static_cast<int64_t>(num_steps));
  metrics->GetCounter("online.plans_made")
      ->Increment(static_cast<int64_t>(result.plans_made));
  metrics->GetCounter("online.forecaster_faults")
      ->Increment(static_cast<int64_t>(result.forecaster_faults));
  metrics->GetCounter("online.retried_plans")
      ->Increment(static_cast<int64_t>(result.retried_plans));
  metrics->GetCounter("online.fallback_plans")
      ->Increment(static_cast<int64_t>(result.fallback_plans));
  metrics->GetCounter("online.stale_plans")
      ->Increment(static_cast<int64_t>(result.stale_plans));
  metrics->GetCounter("online.faulted_steps")
      ->Increment(static_cast<int64_t>(result.faulted_steps));
  metrics->GetCounter("online.degraded_steps")
      ->Increment(static_cast<int64_t>(result.degraded_steps));
  metrics->GetCounter("online.fault_events")
      ->Increment(static_cast<int64_t>(result.fault_events.size()));
  if (streaming) {
    metrics->GetCounter("stream.ingested")
        ->Increment(static_cast<int64_t>(result.points_ingested));
    metrics->GetCounter("stream.dropped")
        ->Increment(static_cast<int64_t>(result.points_dropped));
    metrics->GetCounter("stream.pending")
        ->Increment(static_cast<int64_t>(result.points_pending));
    metrics->GetCounter("stream.refresh.recursive_updates")
        ->Increment(static_cast<int64_t>(result.refresh.recursive_updates));
    metrics->GetCounter("stream.refresh.fine_tunes")
        ->Increment(static_cast<int64_t>(result.refresh.fine_tunes));
    metrics->GetCounter("stream.refresh.gradient_steps")
        ->Increment(static_cast<int64_t>(result.refresh.gradient_steps));
    metrics->GetCounter("stream.refresh.resyncs")
        ->Increment(static_cast<int64_t>(result.refresh.resyncs));
    metrics->GetCounter("stream.refresh.fallback_retrains")
        ->Increment(static_cast<int64_t>(result.refresh.full_retrains));
    metrics->GetCounter("online.ingest_stall_steps")
        ->Increment(static_cast<int64_t>(result.ingest_stall_steps));
    metrics->GetCounter("online.ingest_bursts")
        ->Increment(static_cast<int64_t>(result.ingest_bursts));
  }
  if (selecting) {
    const select::SelectorStats& sel = result.selection.selector;
    metrics->GetCounter("select.rounds")
        ->Increment(static_cast<int64_t>(sel.rounds));
    metrics->GetCounter("select.switches")
        ->Increment(static_cast<int64_t>(sel.switches));
    metrics->GetCounter("select.promotions")
        ->Increment(static_cast<int64_t>(sel.promotions));
    metrics->GetCounter("select.probe_demotions")
        ->Increment(static_cast<int64_t>(sel.probe_demotions));
    metrics->GetCounter("select.fault_demotions")
        ->Increment(static_cast<int64_t>(sel.fault_demotions));
    metrics->GetCounter("select.drift_demotions")
        ->Increment(static_cast<int64_t>(sel.drift_demotions));
    const select::PreScalerStats& pre = result.selection.prescaler;
    metrics->GetCounter("select.prescale.spikes_detected")
        ->Increment(static_cast<int64_t>(pre.spikes_detected));
    metrics->GetCounter("select.prescale.activations")
        ->Increment(static_cast<int64_t>(pre.activations));
    metrics->GetCounter("select.prescale.rollbacks")
        ->Increment(static_cast<int64_t>(pre.rollbacks));
    metrics->GetCounter("select.prescale.timeout_rollbacks")
        ->Increment(static_cast<int64_t>(pre.timeout_rollbacks));
    metrics->GetCounter("select.prescale.floor_raised_steps")
        ->Increment(static_cast<int64_t>(pre.floor_raised_steps));
  }
  return result;
}

std::vector<obs::ScalingDecision> CollectDecisions(
    const OnlineLoopResult& result, const std::string& run) {
  std::unordered_set<size_t> faulted_steps;
  for (const simdb::FaultEvent& event : result.fault_events) {
    faulted_steps.insert(event.step);
  }
  std::vector<obs::ScalingDecision> decisions;
  decisions.reserve(result.steps.size());
  for (const simdb::StepStats& stats : result.steps) {
    obs::ScalingDecision d;
    d.run = run;
    d.step = static_cast<uint64_t>(stats.step);
    d.target_nodes = stats.target_nodes;
    d.active_nodes = stats.active_nodes;
    d.workload = stats.workload;
    d.utilization = stats.avg_utilization;
    d.under_provisioned = stats.under_provisioned;
    d.slo_violated = stats.slo_violated;
    d.faulted = faulted_steps.count(stats.step) > 0;
    decisions.push_back(std::move(d));
  }
  return decisions;
}

}  // namespace rpas::core
