#include "core/online_loop.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "core/evaluator.h"

namespace rpas::core {

std::vector<int> BuildFallbackPlan(const std::vector<double>& recent,
                                   const std::vector<int>& last_good_plan,
                                   int current_nodes,
                                   const ScalingConfig& config,
                                   const DegradationPolicy& policy) {
  double peak = 0.0;
  for (double w : recent) {
    peak = std::max(peak, w);
  }
  int hold = RequiredNodes(peak * policy.reactive_safety_margin, config);
  if (!last_good_plan.empty()) {
    hold = std::max(hold, last_good_plan.back());
  }
  hold = std::max(hold, current_nodes);
  const size_t steps = std::max<size_t>(policy.fallback_plan_steps, 1);
  return std::vector<int>(steps, hold);
}

Result<OnlineLoopResult> RunOnlineLoop(const RobustAutoScalingManager& manager,
                                       const ts::TimeSeries& series,
                                       size_t eval_start, size_t num_steps,
                                       const OnlineLoopOptions& options) {
  if (num_steps == 0) {
    return Status::InvalidArgument("online loop needs at least one step");
  }
  if (eval_start + num_steps > series.size()) {
    return Status::InvalidArgument(
        "evaluation range extends past the series");
  }
  if (eval_start < manager.ContextLength()) {
    return Status::InvalidArgument(
        "eval_start leaves less history than the forecaster's context "
        "length");
  }

  obs::TraceBuffer* trace = obs::ResolveTrace(options.trace);
  obs::Span run_span(trace, "online.run", static_cast<int64_t>(num_steps));

  OnlineLoopResult result;
  result.allocation.reserve(num_steps);
  result.steps.reserve(num_steps);

  const bool inject = options.faults.Any();
  const simdb::FaultInjector injector(options.faults);
  const DegradationPolicy& policy = options.degradation;

  simdb::Cluster cluster(options.cluster);
  std::vector<int> current_plan;
  std::vector<int> last_good_plan;
  bool plan_is_fallback = false;
  size_t plan_cursor = 0;
  double uncertainty_sum = 0.0;
  size_t uncertainty_n = 0;
  int current_nodes = options.cluster.initial_nodes;

  // Trailing realized workloads feeding the reactive fallback, seeded from
  // the observed history so degradation works even on the very first round.
  std::vector<double> recent;
  const size_t window = std::max<size_t>(policy.reactive_window, 1);
  for (size_t back = std::min(window, eval_start); back > 0; --back) {
    recent.push_back(series.values[eval_start - back]);
  }

  for (size_t i = 0; i < num_steps; ++i) {
    const size_t t = eval_start + i;
    simdb::StepFaults faults;  // default: no fault
    if (inject) {
      faults = injector.FaultsForStep(i);
    }
    const size_t replan =
        options.replan_every > 0 ? options.replan_every : SIZE_MAX;
    if (current_plan.empty() || plan_cursor >= current_plan.size() ||
        (options.replan_every > 0 && plan_cursor >= replan)) {
      // ---- Planning round, with graceful degradation under faults. ----
      obs::Span plan_span(trace, "online.plan", static_cast<int64_t>(i));
      plan_is_fallback = false;
      ++result.plans_made;
      const int failed_attempts =
          faults.forecaster_timeout_attempts + (faults.forecaster_nan ? 1 : 0);
      if (inject && faults.stale_forecast && !last_good_plan.empty()) {
        // The forecaster served its cached previous forecast; the round
        // silently replays the last known-good plan from its start.
        current_plan = last_good_plan;
        plan_cursor = 0;
        ++result.stale_plans;
        result.fault_events.push_back(
            {i, simdb::FaultType::kStaleForecast, simdb::FaultAction::kNone,
             0, 0.0});
      } else if (inject && failed_attempts > policy.max_retries) {
        // Bounded retry exhausted: degrade instead of aborting.
        ++result.forecaster_faults;
        ++result.fallback_plans;
        const simdb::FaultAction action =
            last_good_plan.empty() ? simdb::FaultAction::kFallbackReactive
                                   : simdb::FaultAction::kFallbackLastGood;
        result.fault_events.push_back(
            {i,
             faults.forecaster_timeout_attempts > 0
                 ? simdb::FaultType::kForecasterTimeout
                 : simdb::FaultType::kForecasterNan,
             action, failed_attempts, 0.0});
        current_plan = BuildFallbackPlan(recent, last_good_plan,
                                         current_nodes, manager.config(),
                                         policy);
        plan_cursor = 0;
        plan_is_fallback = true;
      } else {
        // Either a clean round, or a faulted one whose
        // (failed_attempts + 1)-th attempt lands within the retry budget —
        // the successful attempt's output is what PlanNext returns.
        ts::TimeSeries history = series.Slice(0, t);
        auto plan_or = manager.PlanNext(history, current_nodes);
        if (!plan_or.ok()) {
          if (!inject) {
            return plan_or.status();
          }
          // A genuine planner error under fault injection is handled by
          // the same degradation path: record, fall back, keep serving.
          ++result.fallback_plans;
          const simdb::FaultAction action =
              last_good_plan.empty() ? simdb::FaultAction::kFallbackReactive
                                     : simdb::FaultAction::kFallbackLastGood;
          result.fault_events.push_back({i, simdb::FaultType::kPlannerError,
                                         action, failed_attempts, 0.0});
          current_plan = BuildFallbackPlan(recent, last_good_plan,
                                           current_nodes, manager.config(),
                                           policy);
          plan_cursor = 0;
          plan_is_fallback = true;
        } else {
          RobustAutoScalingManager::Plan plan = std::move(plan_or).value();
          current_plan = std::move(plan.nodes);
          if (current_plan.empty()) {
            // Indexing an empty plan below would be out-of-bounds UB; a
            // planner that yields no steps is a contract violation.
            return Status::Internal(
                "online loop: planner returned an empty plan");
          }
          if (failed_attempts > 0) {
            ++result.forecaster_faults;
            ++result.retried_plans;
            result.fault_events.push_back(
                {i,
                 faults.forecaster_timeout_attempts > 0
                     ? simdb::FaultType::kForecasterTimeout
                     : simdb::FaultType::kForecasterNan,
                 simdb::FaultAction::kRetrySucceeded, failed_attempts, 0.0});
          }
          last_good_plan = current_plan;
          plan_cursor = 0;
          for (double u : plan.uncertainty) {
            uncertainty_sum += u;
            ++uncertainty_n;
          }
        }
      }
    }
    const int target = current_plan[plan_cursor++];
    const double realized = series.values[t];
    simdb::StepStats stats = cluster.Step(target, realized, faults);
    current_nodes = cluster.NumNodes();
    if (inject) {
      if (stats.nodes_delayed > 0) {
        result.fault_events.push_back(
            {i, simdb::FaultType::kActuationDelay,
             simdb::FaultAction::kNone, 0,
             static_cast<double>(stats.nodes_delayed)});
      }
      if (stats.nodes_denied > 0) {
        result.fault_events.push_back(
            {i, simdb::FaultType::kPartialScaleOut,
             simdb::FaultAction::kNone, 0,
             static_cast<double>(stats.nodes_denied)});
      }
      if (faults.crash_nodes > 0 && stats.nodes_failed > 0) {
        result.fault_events.push_back(
            {i, simdb::FaultType::kNodeCrash, simdb::FaultAction::kNone, 0,
             static_cast<double>(stats.nodes_failed)});
      }
      if (faults.workload_multiplier != 1.0) {
        result.fault_events.push_back(
            {i, simdb::FaultType::kWorkloadSpike, simdb::FaultAction::kNone,
             0, faults.workload_multiplier});
      }
      if (faults.Any()) {
        ++result.faulted_steps;
      }
      if (plan_is_fallback) {
        ++result.degraded_steps;
      }
    }
    recent.push_back(stats.workload);
    if (recent.size() > window) {
      recent.erase(recent.begin());
    }
    result.allocation.push_back(target);
    result.steps.push_back(stats);
  }

  // Aggregate outcomes. Under workload-spike faults the realized demand is
  // what the cluster actually saw (stats.workload), so provisioning rates
  // report performance against the faulted workload.
  std::vector<double> realized;
  realized.reserve(num_steps);
  for (const simdb::StepStats& s : result.steps) {
    realized.push_back(s.workload);
  }
  ScalingConfig config = manager.config();
  const ProvisioningReport provisioning =
      EvaluateAllocation(realized, result.allocation, config);
  result.under_provision_rate = provisioning.under_provision_rate;
  result.over_provision_rate = provisioning.over_provision_rate;

  double util_sum = 0.0;
  size_t slo = 0;
  for (const simdb::StepStats& s : result.steps) {
    util_sum += s.avg_utilization;
    if (s.slo_violated) {
      ++slo;
    }
  }
  result.mean_utilization = util_sum / static_cast<double>(num_steps);
  result.slo_violation_rate =
      static_cast<double>(slo) / static_cast<double>(num_steps);
  result.total_node_steps = cluster.total_node_steps();
  result.scale_events = cluster.total_scale_events();
  result.direction_changes = cluster.total_direction_changes();
  result.mean_uncertainty =
      uncertainty_n > 0 ? uncertainty_sum / static_cast<double>(uncertainty_n)
                        : 0.0;

  // Registry counters are bulk-incremented from the finished result, so
  // they agree *exactly* with the OnlineLoopResult fields by construction
  // (see tests/obs_test.cc) and stay deterministic across thread counts.
  obs::MetricsRegistry* metrics = obs::ResolveRegistry(options.metrics);
  metrics->GetCounter("online.steps")
      ->Increment(static_cast<int64_t>(num_steps));
  metrics->GetCounter("online.plans_made")
      ->Increment(static_cast<int64_t>(result.plans_made));
  metrics->GetCounter("online.forecaster_faults")
      ->Increment(static_cast<int64_t>(result.forecaster_faults));
  metrics->GetCounter("online.retried_plans")
      ->Increment(static_cast<int64_t>(result.retried_plans));
  metrics->GetCounter("online.fallback_plans")
      ->Increment(static_cast<int64_t>(result.fallback_plans));
  metrics->GetCounter("online.stale_plans")
      ->Increment(static_cast<int64_t>(result.stale_plans));
  metrics->GetCounter("online.faulted_steps")
      ->Increment(static_cast<int64_t>(result.faulted_steps));
  metrics->GetCounter("online.degraded_steps")
      ->Increment(static_cast<int64_t>(result.degraded_steps));
  metrics->GetCounter("online.fault_events")
      ->Increment(static_cast<int64_t>(result.fault_events.size()));
  return result;
}

std::vector<obs::ScalingDecision> CollectDecisions(
    const OnlineLoopResult& result, const std::string& run) {
  std::unordered_set<size_t> faulted_steps;
  for (const simdb::FaultEvent& event : result.fault_events) {
    faulted_steps.insert(event.step);
  }
  std::vector<obs::ScalingDecision> decisions;
  decisions.reserve(result.steps.size());
  for (const simdb::StepStats& stats : result.steps) {
    obs::ScalingDecision d;
    d.run = run;
    d.step = static_cast<uint64_t>(stats.step);
    d.target_nodes = stats.target_nodes;
    d.active_nodes = stats.active_nodes;
    d.workload = stats.workload;
    d.utilization = stats.avg_utilization;
    d.under_provisioned = stats.under_provisioned;
    d.slo_violated = stats.slo_violated;
    d.faulted = faulted_steps.count(stats.step) > 0;
    decisions.push_back(std::move(d));
  }
  return decisions;
}

}  // namespace rpas::core
