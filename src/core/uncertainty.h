#ifndef RPAS_CORE_UNCERTAINTY_H_
#define RPAS_CORE_UNCERTAINTY_H_

#include <cstddef>
#include <vector>

#include "ts/quantile_forecast.h"

namespace rpas::core {

/// The paper's quantile-spread uncertainty metric (Eq. 8):
///   U = sum_i (tau_i - I(w^{tau_i} < w^{0.5})) * (w^{0.5} - w^{tau_i})
/// computed over all quantile levels of a single forecast step. It is the
/// pinball loss of the quantile grid measured against the *median* forecast
/// instead of the realized value, so it quantifies how spread-out the
/// forecast distribution is: wider spread => larger U => lower confidence.
double QuantileUncertainty(const ts::QuantileForecast& forecast, size_t step);

/// U for every step of the horizon.
std::vector<double> QuantileUncertaintyPerStep(
    const ts::QuantileForecast& forecast);

}  // namespace rpas::core

#endif  // RPAS_CORE_UNCERTAINTY_H_
