#include "core/manager.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/uncertainty.h"

namespace rpas::core {

ScalingSmoother::ScalingSmoother(Options options) : options_(options) {
  RPAS_CHECK(options_.max_step_delta >= 0);
  RPAS_CHECK(options_.scale_in_cooldown >= 0);
}

std::vector<int> ScalingSmoother::Smooth(const std::vector<int>& plan,
                                         int current_nodes) const {
  std::vector<int> out;
  out.reserve(plan.size());
  int prev = current_nodes;
  int cooldown = 0;
  for (int target : plan) {
    int next = target;
    if (options_.max_step_delta > 0) {
      next = std::clamp(next, prev - options_.max_step_delta,
                        prev + options_.max_step_delta);
    }
    // Scale-out is applied immediately; scale-in honours the cooldown so
    // short dips do not trigger flapping.
    if (next < prev) {
      if (cooldown > 0) {
        next = prev;
        --cooldown;
      } else {
        cooldown = options_.scale_in_cooldown;
      }
    } else if (next > prev) {
      cooldown = 0;
    }
    out.push_back(next);
    prev = next;
  }
  return out;
}

RobustAutoScalingManager::RobustAutoScalingManager(
    const forecast::Forecaster* forecaster,
    std::unique_ptr<QuantileAllocator> allocator, ScalingConfig config)
    : forecaster_(forecaster),
      allocator_(std::move(allocator)),
      config_(config) {
  RPAS_CHECK(forecaster_ != nullptr);
  RPAS_CHECK(allocator_ != nullptr);
}

void RobustAutoScalingManager::SetSmoother(ScalingSmoother::Options options) {
  smoother_ = std::make_unique<ScalingSmoother>(options);
}

void RobustAutoScalingManager::SetObservability(
    obs::MetricsRegistry* metrics, obs::TraceBuffer* trace) {
  metrics_ = metrics;
  trace_ = trace;
}

size_t RobustAutoScalingManager::ContextLength() const {
  return forecaster_->ContextLength();
}

size_t RobustAutoScalingManager::Horizon() const {
  return forecaster_->Horizon();
}

Result<RobustAutoScalingManager::Plan> RobustAutoScalingManager::PlanNext(
    const ts::TimeSeries& history, int current_nodes) const {
  const size_t context = forecaster_->ContextLength();
  if (history.size() < context) {
    return Status::InvalidArgument(
        "history shorter than the forecaster's context length");
  }
  forecast::ForecastInput input;
  input.start_index = history.size() - context;
  input.step_minutes = history.step_minutes;
  input.context.assign(
      history.values.end() - static_cast<long>(context),
      history.values.end());

  obs::MetricsRegistry* metrics = obs::ResolveRegistry(metrics_);
  obs::TraceBuffer* trace = obs::ResolveTrace(trace_);
  metrics->GetCounter("manager.plans")->Increment();
  obs::Span plan_span(trace, "manager.plan");

  Result<ts::QuantileForecast> predicted = [&] {
    obs::Span forecast_span(trace, "manager.forecast");
    return forecaster_->Predict(input);
  }();
  RPAS_ASSIGN_OR_RETURN(ts::QuantileForecast fc, std::move(predicted));
  // Validate before allocating: a faulted forecaster (NaN/Inf output) must
  // surface as a detectable error, not propagate garbage into node counts.
  for (size_t h = 0; h < fc.Horizon(); ++h) {
    for (size_t q = 0; q < fc.Levels().size(); ++q) {
      if (!std::isfinite(fc.ValueAtIndex(h, q))) {
        return Status::Internal(
            "forecaster produced a non-finite quantile value");
      }
    }
  }
  Result<std::vector<int>> allocated = [&] {
    obs::Span allocate_span(trace, "manager.allocate");
    return allocator_->Allocate(fc, config_);
  }();
  RPAS_ASSIGN_OR_RETURN(std::vector<int> nodes, std::move(allocated));
  if (smoother_) {
    nodes = smoother_->Smooth(nodes, current_nodes);
  }
  Plan plan;
  plan.uncertainty = QuantileUncertaintyPerStep(fc);
  plan.forecast = std::move(fc);
  plan.nodes = std::move(nodes);
  return plan;
}

}  // namespace rpas::core
