#include "core/strategies.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "core/uncertainty.h"
#include "solver/autoscaling.h"

namespace rpas::core {

namespace {

/// Shared path: allocate for an explicit workload trajectory via the
/// integer auto-scaling solver (Definition 3's optimum).
Result<std::vector<int>> AllocateForTrajectory(
    const std::vector<double>& trajectory, const ScalingConfig& config) {
  solver::AutoScalingProblem problem;
  problem.workloads = trajectory;
  // Forecast quantiles can dip below zero on noisy series; clamp — demand
  // is non-negative.
  for (double& w : problem.workloads) {
    w = std::max(w, 0.0);
  }
  problem.thresholds = {config.theta};
  problem.min_nodes = config.min_nodes;
  problem.max_nodes = config.max_nodes;
  return solver::SolveAutoScalingInteger(problem);
}

}  // namespace

// ------------------------------------------------------------- Reactive ---

ReactiveMaxStrategy::ReactiveMaxStrategy(size_t window) : window_(window) {
  RPAS_CHECK(window > 0);
}

int ReactiveMaxStrategy::Decide(const std::vector<double>& recent,
                                const ScalingConfig& config) const {
  RPAS_CHECK(!recent.empty()) << "reactive decision needs history";
  const size_t n = std::min(window_, recent.size());
  double peak = 0.0;
  for (size_t i = recent.size() - n; i < recent.size(); ++i) {
    peak = std::max(peak, recent[i]);
  }
  return RequiredNodes(peak, config);
}

ReactiveAvgStrategy::ReactiveAvgStrategy(size_t window, double half_life)
    : window_(window), half_life_(half_life) {
  RPAS_CHECK(window > 0);
  RPAS_CHECK(half_life > 0.0);
}

int ReactiveAvgStrategy::Decide(const std::vector<double>& recent,
                                const ScalingConfig& config) const {
  RPAS_CHECK(!recent.empty()) << "reactive decision needs history";
  const size_t n = std::min(window_, recent.size());
  const double decay = std::pow(0.5, 1.0 / half_life_);
  double weighted = 0.0;
  double total = 0.0;
  double weight = 1.0;  // newest value gets weight 1
  for (size_t i = 0; i < n; ++i) {
    const double value = recent[recent.size() - 1 - i];
    weighted += weight * value;
    total += weight;
    weight *= decay;
  }
  return RequiredNodes(weighted / total, config);
}

// ----------------------------------------------------------- Allocators ---

Result<std::vector<int>> PointForecastAllocator::Allocate(
    const ts::QuantileForecast& forecast, const ScalingConfig& config) const {
  return AllocateForTrajectory(forecast.Median(), config);
}

RobustQuantileAllocator::RobustQuantileAllocator(double tau) : tau_(tau) {
  RPAS_CHECK(tau > 0.0 && tau < 1.0) << "tau must be in (0,1)";
}

Result<std::vector<int>> RobustQuantileAllocator::Allocate(
    const ts::QuantileForecast& forecast, const ScalingConfig& config) const {
  return AllocateForTrajectory(forecast.Trajectory(tau_), config);
}

std::string RobustQuantileAllocator::Name() const {
  return StrFormat("Robust-%.2f", tau_);
}

AdaptiveQuantileAllocator::AdaptiveQuantileAllocator(double tau1, double tau2,
                                                     double rho)
    : AdaptiveQuantileAllocator(std::vector<double>{tau1, tau2},
                                std::vector<double>{rho}) {}

AdaptiveQuantileAllocator::AdaptiveQuantileAllocator(
    std::vector<double> levels, std::vector<double> thresholds)
    : levels_(std::move(levels)), thresholds_(std::move(thresholds)) {
  RPAS_CHECK(levels_.size() >= 2) << "adaptive allocator needs >= 2 levels";
  RPAS_CHECK(levels_.size() == thresholds_.size() + 1)
      << "need exactly one threshold between consecutive levels";
  for (size_t i = 0; i < levels_.size(); ++i) {
    RPAS_CHECK(levels_[i] > 0.0 && levels_[i] < 1.0);
    if (i > 0) {
      RPAS_CHECK(levels_[i] > levels_[i - 1])
          << "levels must be strictly increasing";
    }
  }
  for (size_t i = 1; i < thresholds_.size(); ++i) {
    RPAS_CHECK(thresholds_[i] > thresholds_[i - 1])
        << "thresholds must be strictly increasing";
  }
}

double AdaptiveQuantileAllocator::LevelForUncertainty(
    double uncertainty) const {
  for (size_t i = 0; i < thresholds_.size(); ++i) {
    if (uncertainty < thresholds_[i]) {
      return levels_[i];
    }
  }
  return levels_.back();
}

Result<std::vector<int>> AdaptiveQuantileAllocator::Allocate(
    const ts::QuantileForecast& forecast, const ScalingConfig& config) const {
  std::vector<double> trajectory(forecast.Horizon());
  for (size_t h = 0; h < forecast.Horizon(); ++h) {
    const double u = QuantileUncertainty(forecast, h);
    trajectory[h] = forecast.Value(h, LevelForUncertainty(u));
  }
  return AllocateForTrajectory(trajectory, config);
}

std::string AdaptiveQuantileAllocator::Name() const {
  std::string name = "Adaptive";
  for (double level : levels_) {
    name += StrFormat("-%.2f", level);
  }
  return name;
}

// -------------------------------------------------------------- Padding ---

PaddingEnhancement::PaddingEnhancement(Options options) : options_(options) {
  RPAS_CHECK(options_.error_window > 0);
  RPAS_CHECK(options_.quantile > 0.0 && options_.quantile <= 1.0);
  errors_.reserve(options_.error_window);
}

void PaddingEnhancement::Observe(double actual, double predicted) {
  const double underestimation = std::max(actual - predicted, 0.0);
  if (errors_.size() < options_.error_window) {
    errors_.push_back(underestimation);
    if (errors_.size() == options_.error_window) {
      full_ = true;
      next_ = 0;
    }
  } else {
    errors_[next_] = underestimation;
    next_ = (next_ + 1) % options_.error_window;
  }
}

double PaddingEnhancement::CurrentPad() const {
  if (errors_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = errors_;
  std::sort(sorted.begin(), sorted.end());
  const double h =
      (static_cast<double>(sorted.size()) - 1.0) * options_.quantile;
  const size_t lo = static_cast<size_t>(std::floor(h));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> PaddingEnhancement::Pad(
    const std::vector<double>& prediction) const {
  const double pad = CurrentPad();
  std::vector<double> out = prediction;
  for (double& v : out) {
    v += pad;
  }
  return out;
}

}  // namespace rpas::core
