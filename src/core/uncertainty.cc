#include "core/uncertainty.h"

#include "common/logging.h"

namespace rpas::core {

double QuantileUncertainty(const ts::QuantileForecast& forecast, size_t step) {
  RPAS_CHECK(step < forecast.Horizon()) << "step out of range";
  const double median = forecast.Value(step, 0.5);
  double u = 0.0;
  const std::vector<double>& levels = forecast.Levels();
  for (size_t q = 0; q < levels.size(); ++q) {
    const double w_tau = forecast.ValueAtIndex(step, q);
    const double indicator = w_tau < median ? 1.0 : 0.0;
    // Standard pinball orientation (non-negative, increasing with spread).
    // The paper's Eq. 8 prints the last factor as (w^0.5 - w^tau), which
    // taken literally is <= 0 for every term — yet the text states "a
    // higher value ... signifies an elevated level of uncertainty" and
    // that the metric "shares similarities with quantile loss", which is
    // non-negative. We therefore use (w^tau - w^0.5), the same orientation
    // fix as PinballLoss (ts/metrics.cc).
    u += (levels[q] - indicator) * (w_tau - median);
  }
  return u;
}

std::vector<double> QuantileUncertaintyPerStep(
    const ts::QuantileForecast& forecast) {
  std::vector<double> out(forecast.Horizon());
  for (size_t h = 0; h < forecast.Horizon(); ++h) {
    out[h] = QuantileUncertainty(forecast, h);
  }
  return out;
}

}  // namespace rpas::core
