#include "core/multi_resource.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace rpas::core {

namespace {

Status ValidateDemands(const std::vector<ResourceDemand>& demands) {
  if (demands.empty()) {
    return Status::InvalidArgument("no resource demands given");
  }
  const size_t h = demands.front().workload.size();
  if (h == 0) {
    return Status::InvalidArgument("empty demand trajectory");
  }
  for (const ResourceDemand& d : demands) {
    if (d.workload.size() != h) {
      return Status::InvalidArgument(
          "resource '" + d.name + "' has mismatched trajectory length");
    }
    if (d.theta <= 0.0) {
      return Status::InvalidArgument("resource '" + d.name +
                                     "' has non-positive threshold");
    }
  }
  return Status::OK();
}

int NodesFor(double workload, double theta) {
  return static_cast<int>(std::ceil(std::max(workload, 0.0) / theta - 1e-9));
}

}  // namespace

Result<std::vector<int>> AllocateMultiResource(
    const std::vector<ResourceDemand>& demands, const ScalingConfig& config) {
  RPAS_RETURN_IF_ERROR(ValidateDemands(demands));
  const size_t h = demands.front().workload.size();
  std::vector<int> allocation(h, config.min_nodes);
  for (size_t t = 0; t < h; ++t) {
    int needed = config.min_nodes;
    for (const ResourceDemand& d : demands) {
      needed = std::max(needed, NodesFor(d.workload[t], d.theta));
    }
    if (config.max_nodes > 0 && needed > config.max_nodes) {
      return Status::OutOfRange(StrFormat(
          "step %zu requires %d nodes, cap is %d", t, needed,
          config.max_nodes));
    }
    allocation[t] = needed;
  }
  return allocation;
}

Result<std::vector<int>> AllocateMultiResourceQuantile(
    const std::vector<std::pair<ts::QuantileForecast, double>>&
        forecasts_with_theta,
    double tau, const ScalingConfig& config) {
  if (forecasts_with_theta.empty()) {
    return Status::InvalidArgument("no forecasts given");
  }
  if (tau <= 0.0 || tau >= 1.0) {
    return Status::InvalidArgument("tau must lie in (0, 1)");
  }
  std::vector<ResourceDemand> demands;
  demands.reserve(forecasts_with_theta.size());
  size_t index = 0;
  for (const auto& [forecast, theta] : forecasts_with_theta) {
    ResourceDemand demand;
    demand.name = StrFormat("resource-%zu", index++);
    demand.workload = forecast.Trajectory(tau);
    demand.theta = theta;
    demands.push_back(std::move(demand));
  }
  return AllocateMultiResource(demands, config);
}

Result<std::vector<int>> BindingResourcePerStep(
    const std::vector<ResourceDemand>& demands, const ScalingConfig& config) {
  RPAS_RETURN_IF_ERROR(ValidateDemands(demands));
  const size_t h = demands.front().workload.size();
  std::vector<int> binding(h, -1);
  for (size_t t = 0; t < h; ++t) {
    int best_nodes = config.min_nodes;
    for (size_t r = 0; r < demands.size(); ++r) {
      const int nodes = NodesFor(demands[r].workload[t], demands[r].theta);
      if (nodes > best_nodes) {
        best_nodes = nodes;
        binding[t] = static_cast<int>(r);
      }
    }
  }
  return binding;
}

}  // namespace rpas::core
