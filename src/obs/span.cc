#include "obs/span.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

namespace rpas::obs {

namespace {

thread_local Span* tls_current_span = nullptr;

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool EnvTruthy(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return false;
  }
  return std::strcmp(value, "") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0 && std::strcmp(value, "off") != 0;
}

// Thread-index table shared by all buffers; indices are stable per
// (buffer, thread) pair and assigned in first-use order.
std::mutex g_thread_index_mu;
std::map<std::pair<const TraceBuffer*, std::thread::id>, uint32_t>&
ThreadIndexTable() {
  static auto* table =
      new std::map<std::pair<const TraceBuffer*, std::thread::id>, uint32_t>();
  return *table;
}

}  // namespace

TraceBuffer::TraceBuffer(size_t capacity, bool enabled)
    : enabled_(enabled),
      epoch_ns_(MonotonicNs()),
      capacity_(capacity == 0 ? 1 : capacity) {}

void TraceBuffer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(events_.begin(), events_.end());
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

uint64_t TraceBuffer::NowNs() const { return MonotonicNs() - epoch_ns_; }

uint32_t TraceBuffer::ThreadIndex() {
  std::lock_guard<std::mutex> lock(g_thread_index_mu);
  auto key = std::make_pair(static_cast<const TraceBuffer*>(this),
                            std::this_thread::get_id());
  auto [it, inserted] = ThreadIndexTable().emplace(key, 0);
  if (inserted) {
    std::lock_guard<std::mutex> self_lock(mu_);
    it->second = next_thread_++;
  }
  return it->second;
}

TraceBuffer& TraceBuffer::Global() {
  // Leaked: spans may be alive in static destructors.
  static TraceBuffer* buffer =
      new TraceBuffer(TraceBuffer::kDefaultCapacity,
                      EnvTruthy("RPAS_METRICS"));
  return *buffer;
}

Span::Span(TraceBuffer* buffer, const char* name, int64_t tag)
    : buffer_(ResolveTrace(buffer)), name_(name), tag_(tag) {
  if (!buffer_->enabled()) {
    buffer_ = nullptr;  // disabled path: no clock, no stack
    return;
  }
  start_ns_ = buffer_->NowNs();
  id_ = buffer_->NextSpanId();
  if (tls_current_span != nullptr &&
      tls_current_span->buffer_ == buffer_) {
    parent_ = tls_current_span->id_;
    depth_ = tls_current_span->depth_ + 1;
  }
  prev_ = tls_current_span;
  tls_current_span = this;
}

Span::~Span() {
  if (buffer_ == nullptr) {
    return;
  }
  tls_current_span = prev_;
  TraceEvent event;
  event.name = name_;
  event.tag = tag_;
  event.start_ns = start_ns_;
  event.duration_ns = buffer_->NowNs() - start_ns_;
  event.id = id_;
  event.parent = parent_;
  event.depth = depth_;
  event.thread = buffer_->ThreadIndex();
  buffer_->Record(std::move(event));
}

}  // namespace rpas::obs
