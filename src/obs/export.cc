#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace rpas::obs {

namespace {

/// Minimal JSON string escaper (names and run labels are plain ASCII in
/// practice; quotes, backslashes and control bytes are escaped anyway).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << content;
  out.flush();
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

/// Deterministic span sort key: (name, tag); full-mode exports keep buffer
/// order instead.
std::vector<TraceEvent> SortedSpans(const TraceBuffer* trace) {
  std::vector<TraceEvent> events = trace->Snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.name != b.name) {
                       return a.name < b.name;
                     }
                     return a.tag < b.tag;
                   });
  return events;
}

}  // namespace

std::string FormatDouble(double value) {
  // Shortest decimal form that round-trips: try increasing precision.
  for (int precision = 15; precision <= 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate.c_str(), "%lf", &parsed);
    if (parsed == value) {
      return candidate;
    }
  }
  return StrFormat("%.17g", value);
}

RunExport::RunExport(const MetricsRegistry* metrics, const TraceBuffer* trace,
                     std::vector<ScalingDecision> decisions,
                     ExportOptions options)
    : metrics_(metrics),
      trace_(trace),
      decisions_(std::move(decisions)),
      options_(options) {}

std::string RunExport::ToJsonl() const {
  std::ostringstream out;
  const bool det = options_.deterministic;
  out << "{\"type\":\"run\",\"schema\":\"rpas_obs.v1\",\"deterministic\":"
      << (det ? "true" : "false") << "}\n";

  if (metrics_ != nullptr) {
    for (const auto& [name, counter] : metrics_->Counters()) {
      if (det && !counter->deterministic()) {
        continue;
      }
      out << "{\"type\":\"counter\",\"name\":\"" << JsonEscape(name)
          << "\",\"value\":" << counter->value() << "}\n";
    }
    for (const auto& [name, gauge] : metrics_->Gauges()) {
      if (det && !gauge->deterministic()) {
        continue;
      }
      out << "{\"type\":\"gauge\",\"name\":\"" << JsonEscape(name)
          << "\",\"value\":" << FormatDouble(gauge->value()) << "}\n";
    }
    for (const auto& [name, hist] : metrics_->Histograms()) {
      if (det && !hist->deterministic()) {
        continue;
      }
      out << "{\"type\":\"histogram\",\"name\":\"" << JsonEscape(name)
          << "\",\"count\":" << hist->count();
      if (hist->count() > 0) {
        out << ",\"min\":" << FormatDouble(hist->min())
            << ",\"max\":" << FormatDouble(hist->max());
        if (!det) {
          out << ",\"sum\":" << FormatDouble(hist->sum());
        }
        out << ",\"p50\":" << FormatDouble(hist->Quantile(0.5))
            << ",\"p90\":" << FormatDouble(hist->Quantile(0.9))
            << ",\"p99\":" << FormatDouble(hist->Quantile(0.99));
        out << ",\"buckets\":[";
        bool first = true;
        for (size_t i = 0; i < hist->NumBuckets(); ++i) {
          const uint64_t n = hist->BucketCount(i);
          if (n == 0) {
            continue;
          }
          if (!first) {
            out << ",";
          }
          first = false;
          out << "{\"le\":";
          if (i < hist->bounds().size()) {
            out << FormatDouble(hist->bounds()[i]);
          } else {
            out << "\"inf\"";
          }
          out << ",\"n\":" << n << "}";
        }
        out << "]";
      }
      out << "}\n";
    }
  }

  if (trace_ != nullptr) {
    if (det) {
      for (const TraceEvent& e : SortedSpans(trace_)) {
        out << "{\"type\":\"span\",\"name\":\"" << JsonEscape(e.name)
            << "\",\"tag\":" << e.tag << "}\n";
      }
    } else {
      for (const TraceEvent& e : trace_->Snapshot()) {
        out << "{\"type\":\"span\",\"name\":\"" << JsonEscape(e.name)
            << "\",\"tag\":" << e.tag << ",\"start_ns\":" << e.start_ns
            << ",\"dur_ns\":" << e.duration_ns << ",\"id\":" << e.id
            << ",\"parent\":" << e.parent << ",\"depth\":" << e.depth
            << ",\"thread\":" << e.thread << "}\n";
      }
      if (trace_->dropped() > 0) {
        out << "{\"type\":\"trace_dropped\",\"count\":" << trace_->dropped()
            << "}\n";
      }
    }
  }

  for (const ScalingDecision& d : decisions_) {
    out << "{\"type\":\"decision\",\"run\":\"" << JsonEscape(d.run)
        << "\",\"step\":" << d.step << ",\"target\":" << d.target_nodes
        << ",\"active\":" << d.active_nodes
        << ",\"workload\":" << FormatDouble(d.workload)
        << ",\"util\":" << FormatDouble(d.utilization)
        << ",\"under\":" << (d.under_provisioned ? 1 : 0)
        << ",\"slo\":" << (d.slo_violated ? 1 : 0)
        << ",\"faulted\":" << (d.faulted ? 1 : 0) << "}\n";
  }
  return out.str();
}

std::string RunExport::ToCsv() const {
  std::ostringstream out;
  const bool det = options_.deterministic;
  // Fixed union-of-fields header; every record type fills its columns and
  // leaves the rest empty, so one flat file covers the whole run.
  out << "record,name,tag,value,count,min,max,p50,p90,p99,run,step,target,"
         "active,workload,util,under,slo,faulted\n";

  if (metrics_ != nullptr) {
    for (const auto& [name, counter] : metrics_->Counters()) {
      if (det && !counter->deterministic()) {
        continue;
      }
      out << "counter," << CsvEscape(name) << ",," << counter->value()
          << ",,,,,,,,,,,,,,,\n";
    }
    for (const auto& [name, gauge] : metrics_->Gauges()) {
      if (det && !gauge->deterministic()) {
        continue;
      }
      out << "gauge," << CsvEscape(name) << ",,"
          << FormatDouble(gauge->value()) << ",,,,,,,,,,,,,,,\n";
    }
    for (const auto& [name, hist] : metrics_->Histograms()) {
      if (det && !hist->deterministic()) {
        continue;
      }
      out << "histogram," << CsvEscape(name) << ",,";
      if (!det && hist->count() > 0) {
        out << FormatDouble(hist->sum());
      }
      out << "," << hist->count() << ",";
      if (hist->count() > 0) {
        out << FormatDouble(hist->min()) << "," << FormatDouble(hist->max())
            << "," << FormatDouble(hist->Quantile(0.5)) << ","
            << FormatDouble(hist->Quantile(0.9)) << ","
            << FormatDouble(hist->Quantile(0.99));
      } else {
        out << ",,,,";
      }
      out << ",,,,,,,,,\n";
    }
  }

  if (trace_ != nullptr) {
    const std::vector<TraceEvent> events =
        det ? SortedSpans(trace_) : trace_->Snapshot();
    for (const TraceEvent& e : events) {
      out << "span," << CsvEscape(e.name) << "," << e.tag << ",";
      if (!det) {
        out << e.duration_ns;  // value column = duration (ns)
      }
      out << ",,,,,,,,,,,,,,,\n";
    }
  }

  for (const ScalingDecision& d : decisions_) {
    out << "decision,,,,,,,,,," << CsvEscape(d.run) << "," << d.step << ","
        << d.target_nodes << "," << d.active_nodes << ","
        << FormatDouble(d.workload) << "," << FormatDouble(d.utilization)
        << "," << (d.under_provisioned ? 1 : 0) << ","
        << (d.slo_violated ? 1 : 0) << "," << (d.faulted ? 1 : 0) << "\n";
  }
  return out.str();
}

Status RunExport::WriteJsonl(const std::string& path) const {
  return WriteFile(path, ToJsonl());
}

Status RunExport::WriteCsv(const std::string& path) const {
  return WriteFile(path, ToCsv());
}

}  // namespace rpas::obs
