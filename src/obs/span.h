#ifndef RPAS_OBS_SPAN_H_
#define RPAS_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace rpas::obs {

/// One completed span: a named, monotonic-clock-timed section of work,
/// optionally carrying a deterministic integer tag (fold index, step
/// index, ...). `id`/`parent`/`depth` capture same-thread nesting;
/// `thread` is a stable small index assigned per recording thread.
///
/// Deterministic subset: (name, tag) is a pure function of the
/// instrumented logical operation. Everything else — times, ids, thread,
/// depth — depends on scheduling (a span recorded on a pool worker has no
/// same-thread parent that its serial-execution twin has), so
/// deterministic exports emit only (name, tag); see export.h.
struct TraceEvent {
  std::string name;
  int64_t tag = -1;
  uint64_t start_ns = 0;  ///< monotonic, relative to buffer creation
  uint64_t duration_ns = 0;
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = no same-thread enclosing span
  uint32_t depth = 0;   ///< same-thread nesting depth (0 = root)
  uint32_t thread = 0;
};

/// Bounded, thread-safe in-memory buffer of completed spans. When full,
/// the newest events are dropped (and counted) rather than evicting older
/// context — a run export should show how a run started even if it
/// overflowed. Recording takes a mutex; spans sit on round/fold-level
/// paths, not inner loops, so contention is negligible.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = kDefaultCapacity,
                       bool enabled = true);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void Record(TraceEvent event);

  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

  /// Monotonic nanoseconds since this buffer was created.
  uint64_t NowNs() const;
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Stable small index for the calling thread (first caller gets 0).
  uint32_t ThreadIndex();

  /// Process-wide buffer used when no explicit buffer is injected.
  /// Enabled under the same RPAS_METRICS toggle as
  /// MetricsRegistry::Global().
  static TraceBuffer& Global();

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  std::atomic<bool> enabled_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> dropped_{0};
  uint64_t epoch_ns_ = 0;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  uint32_t next_thread_ = 0;
};

/// RAII scoped span: construction notes the monotonic start time, the
/// destructor records the completed TraceEvent. Nesting is tracked through
/// a thread-local stack, so spans opened on ThreadPool workers are safe
/// and simply start a fresh nesting root on that worker. `name` must be a
/// string literal (or outlive the span). A span bound to a disabled (or
/// null-resolved) buffer costs one relaxed load and touches no clock.
class Span {
 public:
  /// Records into `buffer`, or into TraceBuffer::Global() when null.
  Span(TraceBuffer* buffer, const char* name, int64_t tag = -1);
  /// Records into the global buffer.
  explicit Span(const char* name, int64_t tag = -1)
      : Span(nullptr, name, tag) {}
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceBuffer* buffer_;  // null when disabled at construction
  const char* name_;
  int64_t tag_;
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint32_t depth_ = 0;
  Span* prev_ = nullptr;  // enclosing span on this thread
};

/// Resolves the effective trace buffer for an instrumentation site: the
/// injected one if non-null, else the global buffer.
inline TraceBuffer* ResolveTrace(TraceBuffer* injected) {
  return injected != nullptr ? injected : &TraceBuffer::Global();
}

}  // namespace rpas::obs

#endif  // RPAS_OBS_SPAN_H_
