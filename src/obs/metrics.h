#ifndef RPAS_OBS_METRICS_H_
#define RPAS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rpas::obs {

namespace internal {

/// Number of per-thread stripes for striped instruments (power of two).
/// Threads hash onto stripes by a stable per-thread slot id, so with up to
/// kMetricStripes concurrent threads every writer owns a private cache
/// line; beyond that, slots are shared but remain correct (atomics).
inline constexpr size_t kMetricStripes = 16;

/// Stable per-thread stripe slot in [0, kMetricStripes). Assigned on first
/// use from a process-wide round-robin counter, so the first
/// kMetricStripes threads never collide.
size_t ThisThreadStripe();

/// One cache line per stripe so concurrent writers on different stripes
/// never share a line.
struct alignas(64) CounterStripe {
  std::atomic<int64_t> value{0};
};

/// Per-stripe scalar state for striped histograms (bucket counts are laid
/// out separately, cache-line padded per stripe).
struct alignas(64) HistogramStripe {
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min;
  std::atomic<double> max;
};

}  // namespace internal

/// Metric instruments handed out by MetricsRegistry. Every mutation first
/// checks the owning registry's enabled flag (one relaxed atomic load), so
/// instrumented hot paths cost a load + branch when metrics are off and a
/// handful of relaxed atomic ops when they are on. Handles are stable for
/// the registry's lifetime and safe to cache and to use concurrently.
///
/// Determinism: a metric is *deterministic* when its exported value is a
/// pure function of the workload's seeds — independent of thread count,
/// scheduling, and wall-clock. Counters and histograms over deterministic
/// quantities (losses, fault counts) qualify; anything timing- or
/// scheduling-derived (fold milliseconds, pool queue depths) must be
/// registered with `deterministic = false` so deterministic exports skip
/// it (see export.h).
class Counter {
 public:
  /// Adds `n` (no-op while the registry is disabled). Striped counters
  /// add to the calling thread's stripe instead of the shared word, so
  /// concurrent increments from different threads touch disjoint cache
  /// lines; `value()` merges stripes on read (exact — integer addition
  /// commutes).
  void Increment(int64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    if (stripes_ != nullptr) {
      stripes_[internal::ThisThreadStripe()].value.fetch_add(
          n, std::memory_order_relaxed);
    } else {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  int64_t value() const {
    int64_t total = value_.load(std::memory_order_relaxed);
    if (stripes_ != nullptr) {
      for (size_t i = 0; i < internal::kMetricStripes; ++i) {
        total += stripes_[i].value.load(std::memory_order_relaxed);
      }
    }
    return total;
  }
  bool striped() const { return stripes_ != nullptr; }
  bool deterministic() const { return deterministic_; }

 private:
  friend class MetricsRegistry;
  Counter(const std::atomic<bool>* enabled, bool deterministic, bool striped)
      : stripes_(striped ? new internal::CounterStripe[internal::kMetricStripes]
                         : nullptr),
        enabled_(enabled),
        deterministic_(deterministic) {}

  std::atomic<int64_t> value_{0};
  const std::unique_ptr<internal::CounterStripe[]> stripes_;
  const std::atomic<bool>* enabled_;
  const bool deterministic_;
};

/// Last-value instrument. Concurrent Set calls race benignly (last writer
/// wins), which makes a gauge's final value scheduling-dependent — gauges
/// therefore default to non-deterministic.
class Gauge {
 public:
  void Set(double value) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  /// Monotonic maximum (CAS loop; order-independent).
  void Max(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool deterministic() const { return deterministic_; }

 private:
  friend class MetricsRegistry;
  Gauge(const std::atomic<bool>* enabled, bool deterministic)
      : enabled_(enabled), deterministic_(deterministic) {}

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
  const bool deterministic_;
};

/// Fixed-bucket histogram with quantile readout. Bucket upper bounds are
/// set at registration and never change; Observe() is an atomic add on one
/// bucket plus CAS updates of min/max/sum. Bucket counts, total count, min
/// and max are order-independent; the floating-point `sum` is not (parallel
/// observation order changes rounding), so deterministic exports include
/// everything except `sum`.
/// Striped histograms (GetStripedHistogram) keep per-thread-slot bucket
/// counts and scalar state and merge on read: bucket counts, total count,
/// min and max merge exactly (integer sums and order-independent folds), so
/// a striped histogram's deterministic export is byte-identical to the
/// unstriped one at any thread count; `sum` remains order-dependent float
/// accumulation and stays excluded from deterministic exports.
class Histogram {
 public:
  void Observe(double value);

  uint64_t count() const;
  double sum() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty

  /// Quantile estimate by linear interpolation inside the bucket where the
  /// cumulative count crosses `q * count`, clamped to the observed
  /// [min, max]. Pure function of the bucket counts and min/max, so it is
  /// deterministic whenever the observations are. Returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` (bucket i covers (bounds[i-1], bounds[i]];
  /// bucket bounds.size() is the overflow bucket). Merges stripes when
  /// striped.
  uint64_t BucketCount(size_t i) const;
  size_t NumBuckets() const { return bounds_.size() + 1; }
  bool striped() const { return stripe_scalars_ != nullptr; }
  bool deterministic() const { return deterministic_; }

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds,
            bool deterministic, bool striped);

  const std::vector<double> bounds_;  // sorted upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  // Striped state (null when unstriped). Bucket counts are one flat array
  // of kMetricStripes blocks, each padded to a multiple of 8 atomics so
  // every stripe starts on its own cache line.
  size_t stripe_stride_ = 0;
  std::unique_ptr<std::atomic<uint64_t>[]> stripe_counts_;
  std::unique_ptr<internal::HistogramStripe[]> stripe_scalars_;
  const std::atomic<bool>* enabled_;
  const bool deterministic_;
};

/// Default histogram bounds: log-spaced {1, 2.5, 5} x 10^k over
/// [1e-6, 1e6] — wide enough for losses, gradient norms, millisecond
/// timings and node counts alike.
std::vector<double> DefaultHistogramBounds();

/// Thread-safe registry of named metrics. Lookup (Get*) takes a mutex and
/// is meant to run once per instrumented object (cache the handle);
/// instrument mutations are lock-free. A disabled registry still hands out
/// handles — their mutations are no-ops — so instrumentation sites never
/// branch on configuration themselves.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Finds or creates the named instrument. The first registration fixes
  /// `deterministic` (and, for histograms, the bucket bounds); later calls
  /// return the existing instrument unchanged.
  Counter* GetCounter(const std::string& name, bool deterministic = true);
  Gauge* GetGauge(const std::string& name, bool deterministic = false);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {},
                          bool deterministic = true);

  /// Striped variants for instruments mutated inside parallel hot paths:
  /// writes land on per-thread-slot cache lines and reads merge stripes.
  /// Same namespace as the unstriped getters — the first registration
  /// fixes stripedness (a later plain Get* returns the striped instrument
  /// unchanged, and vice versa). Exported values are identical either way.
  Counter* GetStripedCounter(const std::string& name,
                             bool deterministic = true);
  Histogram* GetStripedHistogram(const std::string& name,
                                 std::vector<double> bounds = {},
                                 bool deterministic = true);

  /// Name-sorted views for exporters (names are copied; instrument
  /// pointers stay valid and live).
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  /// Process-wide registry used when no explicit registry is injected.
  /// Starts enabled iff the RPAS_METRICS environment variable is set to a
  /// truthy value (anything but "", "0", "false", "off"); SetEnabled()
  /// overrides at runtime (benches with --metrics-out do this).
  static MetricsRegistry& Global();

 private:
  Counter* GetCounterImpl(const std::string& name, bool deterministic,
                          bool striped);
  Histogram* GetHistogramImpl(const std::string& name,
                              std::vector<double> bounds, bool deterministic,
                              bool striped);

  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Resolves the effective registry for an instrumentation site: the
/// injected one if non-null, else the global registry.
inline MetricsRegistry* ResolveRegistry(MetricsRegistry* injected) {
  return injected != nullptr ? injected : &MetricsRegistry::Global();
}

/// Snapshots the shared ThreadPool's scheduling statistics (tasks
/// executed, queue depths, worker count) into gauges on `registry`
/// (global when null). Scheduling-dependent, so every gauge is registered
/// non-deterministic.
void RecordPoolStats(MetricsRegistry* registry = nullptr);

}  // namespace rpas::obs

#endif  // RPAS_OBS_METRICS_H_
