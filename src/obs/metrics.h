#ifndef RPAS_OBS_METRICS_H_
#define RPAS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rpas::obs {

/// Metric instruments handed out by MetricsRegistry. Every mutation first
/// checks the owning registry's enabled flag (one relaxed atomic load), so
/// instrumented hot paths cost a load + branch when metrics are off and a
/// handful of relaxed atomic ops when they are on. Handles are stable for
/// the registry's lifetime and safe to cache and to use concurrently.
///
/// Determinism: a metric is *deterministic* when its exported value is a
/// pure function of the workload's seeds — independent of thread count,
/// scheduling, and wall-clock. Counters and histograms over deterministic
/// quantities (losses, fault counts) qualify; anything timing- or
/// scheduling-derived (fold milliseconds, pool queue depths) must be
/// registered with `deterministic = false` so deterministic exports skip
/// it (see export.h).
class Counter {
 public:
  /// Adds `n` (no-op while the registry is disabled).
  void Increment(int64_t n = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  bool deterministic() const { return deterministic_; }

 private:
  friend class MetricsRegistry;
  Counter(const std::atomic<bool>* enabled, bool deterministic)
      : enabled_(enabled), deterministic_(deterministic) {}

  std::atomic<int64_t> value_{0};
  const std::atomic<bool>* enabled_;
  const bool deterministic_;
};

/// Last-value instrument. Concurrent Set calls race benignly (last writer
/// wins), which makes a gauge's final value scheduling-dependent — gauges
/// therefore default to non-deterministic.
class Gauge {
 public:
  void Set(double value) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  /// Monotonic maximum (CAS loop; order-independent).
  void Max(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool deterministic() const { return deterministic_; }

 private:
  friend class MetricsRegistry;
  Gauge(const std::atomic<bool>* enabled, bool deterministic)
      : enabled_(enabled), deterministic_(deterministic) {}

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
  const bool deterministic_;
};

/// Fixed-bucket histogram with quantile readout. Bucket upper bounds are
/// set at registration and never change; Observe() is an atomic add on one
/// bucket plus CAS updates of min/max/sum. Bucket counts, total count, min
/// and max are order-independent; the floating-point `sum` is not (parallel
/// observation order changes rounding), so deterministic exports include
/// everything except `sum`.
class Histogram {
 public:
  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty

  /// Quantile estimate by linear interpolation inside the bucket where the
  /// cumulative count crosses `q * count`, clamped to the observed
  /// [min, max]. Pure function of the bucket counts and min/max, so it is
  /// deterministic whenever the observations are. Returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` (bucket i covers (bounds[i-1], bounds[i]];
  /// bucket bounds.size() is the overflow bucket).
  uint64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  size_t NumBuckets() const { return bounds_.size() + 1; }
  bool deterministic() const { return deterministic_; }

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds,
            bool deterministic);

  const std::vector<double> bounds_;  // sorted upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  const std::atomic<bool>* enabled_;
  const bool deterministic_;
};

/// Default histogram bounds: log-spaced {1, 2.5, 5} x 10^k over
/// [1e-6, 1e6] — wide enough for losses, gradient norms, millisecond
/// timings and node counts alike.
std::vector<double> DefaultHistogramBounds();

/// Thread-safe registry of named metrics. Lookup (Get*) takes a mutex and
/// is meant to run once per instrumented object (cache the handle);
/// instrument mutations are lock-free. A disabled registry still hands out
/// handles — their mutations are no-ops — so instrumentation sites never
/// branch on configuration themselves.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Finds or creates the named instrument. The first registration fixes
  /// `deterministic` (and, for histograms, the bucket bounds); later calls
  /// return the existing instrument unchanged.
  Counter* GetCounter(const std::string& name, bool deterministic = true);
  Gauge* GetGauge(const std::string& name, bool deterministic = false);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {},
                          bool deterministic = true);

  /// Name-sorted views for exporters (names are copied; instrument
  /// pointers stay valid and live).
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  /// Process-wide registry used when no explicit registry is injected.
  /// Starts enabled iff the RPAS_METRICS environment variable is set to a
  /// truthy value (anything but "", "0", "false", "off"); SetEnabled()
  /// overrides at runtime (benches with --metrics-out do this).
  static MetricsRegistry& Global();

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Resolves the effective registry for an instrumentation site: the
/// injected one if non-null, else the global registry.
inline MetricsRegistry* ResolveRegistry(MetricsRegistry* injected) {
  return injected != nullptr ? injected : &MetricsRegistry::Global();
}

/// Snapshots the shared ThreadPool's scheduling statistics (tasks
/// executed, queue depths, worker count) into gauges on `registry`
/// (global when null). Scheduling-dependent, so every gauge is registered
/// non-deterministic.
void RecordPoolStats(MetricsRegistry* registry = nullptr);

}  // namespace rpas::obs

#endif  // RPAS_OBS_METRICS_H_
