#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/parallel.h"

namespace rpas::obs {

namespace {

/// Order-independent atomic accumulation helpers (CAS loops).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

bool EnvTruthy(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return false;
  }
  return std::strcmp(value, "") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0 && std::strcmp(value, "off") != 0;
}

}  // namespace

namespace internal {

size_t ThisThreadStripe() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return slot;
}

}  // namespace internal

void Gauge::Max(double value) {
  if (enabled_->load(std::memory_order_relaxed)) {
    AtomicMax(&value_, value);
  }
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds, bool deterministic,
                     bool striped)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      enabled_(enabled),
      deterministic_(deterministic) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  if (striped) {
    // Pad each stripe's bucket block to a whole number of cache lines
    // (8 x 8-byte atomics) so stripes never share a line.
    stripe_stride_ = (NumBuckets() + 7) / 8 * 8;
    stripe_counts_.reset(
        new std::atomic<uint64_t>[stripe_stride_ * internal::kMetricStripes]);
    for (size_t i = 0; i < stripe_stride_ * internal::kMetricStripes; ++i) {
      stripe_counts_[i].store(0, std::memory_order_relaxed);
    }
    stripe_scalars_.reset(
        new internal::HistogramStripe[internal::kMetricStripes]);
    for (size_t i = 0; i < internal::kMetricStripes; ++i) {
      stripe_scalars_[i].min.store(std::numeric_limits<double>::infinity(),
                                   std::memory_order_relaxed);
      stripe_scalars_[i].max.store(-std::numeric_limits<double>::infinity(),
                                   std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) {
    return;
  }
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  if (stripe_scalars_ != nullptr) {
    const size_t slot = internal::ThisThreadStripe();
    stripe_counts_[slot * stripe_stride_ + bucket].fetch_add(
        1, std::memory_order_relaxed);
    internal::HistogramStripe& stripe = stripe_scalars_[slot];
    stripe.count.fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(&stripe.sum, value);
    AtomicMin(&stripe.min, value);
    AtomicMax(&stripe.max, value);
    return;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

uint64_t Histogram::count() const {
  uint64_t total = count_.load(std::memory_order_relaxed);
  if (stripe_scalars_ != nullptr) {
    for (size_t i = 0; i < internal::kMetricStripes; ++i) {
      total += stripe_scalars_[i].count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const {
  double total = sum_.load(std::memory_order_relaxed);
  if (stripe_scalars_ != nullptr) {
    // Fixed stripe order: deterministic given the per-stripe sums (which
    // are themselves scheduling-dependent — `sum` stays excluded from
    // deterministic exports either way).
    for (size_t i = 0; i < internal::kMetricStripes; ++i) {
      total += stripe_scalars_[i].sum.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t Histogram::BucketCount(size_t i) const {
  uint64_t total = counts_[i].load(std::memory_order_relaxed);
  if (stripe_scalars_ != nullptr) {
    for (size_t s = 0; s < internal::kMetricStripes; ++s) {
      total += stripe_counts_[s * stripe_stride_ + i].load(
          std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::min() const {
  double result = min_.load(std::memory_order_relaxed);
  if (stripe_scalars_ != nullptr) {
    for (size_t i = 0; i < internal::kMetricStripes; ++i) {
      result = std::min(
          result, stripe_scalars_[i].min.load(std::memory_order_relaxed));
    }
  }
  return result;
}

double Histogram::max() const {
  double result = max_.load(std::memory_order_relaxed);
  if (stripe_scalars_ != nullptr) {
    for (size_t i = 0; i < internal::kMetricStripes; ++i) {
      result = std::max(
          result, stripe_scalars_[i].max.load(std::memory_order_relaxed));
    }
  }
  return result;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < NumBuckets(); ++i) {
    const uint64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) {
      continue;
    }
    const double reached = static_cast<double>(cumulative + in_bucket);
    if (reached >= target) {
      // Interpolate inside this bucket. The overflow bucket and the first
      // populated bucket fall back to the observed extrema.
      const double lower =
          i == 0 ? min() : std::max(bounds_[i - 1], min());
      const double upper = i < bounds_.size() ? std::min(bounds_[i], max())
                                              : max();
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      const double value = lower + (upper - lower) * std::clamp(fraction,
                                                                0.0, 1.0);
      return std::clamp(value, min(), max());
    }
    cumulative += in_bucket;
  }
  return max();
}

std::vector<double> DefaultHistogramBounds() {
  std::vector<double> bounds;
  for (int exponent = -6; exponent <= 6; ++exponent) {
    const double decade = std::pow(10.0, exponent);
    for (double factor : {1.0, 2.5, 5.0}) {
      bounds.push_back(factor * decade);
    }
  }
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     bool deterministic) {
  return GetCounterImpl(name, deterministic, /*striped=*/false);
}

Counter* MetricsRegistry::GetStripedCounter(const std::string& name,
                                            bool deterministic) {
  return GetCounterImpl(name, deterministic, /*striped=*/true);
}

Counter* MetricsRegistry::GetCounterImpl(const std::string& name,
                                         bool deterministic, bool striped) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(
                                &enabled_, deterministic, striped)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(name, std::unique_ptr<Gauge>(
                                new Gauge(&enabled_, deterministic)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         bool deterministic) {
  return GetHistogramImpl(name, std::move(bounds), deterministic,
                          /*striped=*/false);
}

Histogram* MetricsRegistry::GetStripedHistogram(const std::string& name,
                                                std::vector<double> bounds,
                                                bool deterministic) {
  return GetHistogramImpl(name, std::move(bounds), deterministic,
                          /*striped=*/true);
}

Histogram* MetricsRegistry::GetHistogramImpl(const std::string& name,
                                             std::vector<double> bounds,
                                             bool deterministic,
                                             bool striped) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) {
      bounds = DefaultHistogramBounds();
    }
    it = histograms_
             .emplace(name,
                      std::unique_ptr<Histogram>(new Histogram(
                          &enabled_, std::move(bounds), deterministic,
                          striped)))
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, const Counter*>>
MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::Gauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrument handles cached in other static-lifetime objects
  // stay valid through shutdown.
  static MetricsRegistry* registry =
      new MetricsRegistry(EnvTruthy("RPAS_METRICS"));
  return *registry;
}

void RecordPoolStats(MetricsRegistry* registry) {
  MetricsRegistry* m = ResolveRegistry(registry);
  const ThreadPool::Stats stats = ThreadPool::Shared().GetStats();
  m->GetGauge("pool.tasks_submitted")
      ->Set(static_cast<double>(stats.tasks_submitted));
  m->GetGauge("pool.tasks_executed")
      ->Set(static_cast<double>(stats.tasks_executed));
  m->GetGauge("pool.queue_depth")
      ->Set(static_cast<double>(stats.queue_depth));
  m->GetGauge("pool.max_queue_depth")
      ->Set(static_cast<double>(stats.max_queue_depth));
  m->GetGauge("pool.threads")->Set(static_cast<double>(stats.threads));
}

}  // namespace rpas::obs
