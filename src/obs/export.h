#ifndef RPAS_OBS_EXPORT_H_
#define RPAS_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rpas::obs {

/// One auto-scaling decision step, as recorded by a closed-loop run. The
/// obs layer defines the record (it depends only on rpas_common); the
/// core layer converts its OnlineLoopResult into these
/// (core::CollectDecisions).
struct ScalingDecision {
  std::string run;  ///< label of the run/cell this step belongs to
  uint64_t step = 0;
  int target_nodes = 0;
  int active_nodes = 0;
  double workload = 0.0;
  double utilization = 0.0;
  bool under_provisioned = false;
  bool slo_violated = false;
  bool faulted = false;  ///< at least one injected fault active this step
};

/// Export configuration. In `deterministic` mode the export is a pure
/// function of the run's seeds — byte-identical across repeats and thread
/// counts. The price of that contract:
///   * metrics registered `deterministic = false` are skipped entirely,
///   * histograms omit their floating-point `sum` (accumulation order
///     varies under parallelism),
///   * spans are reduced to sorted (name, tag) pairs — times, ids, thread
///     and nesting fields all depend on scheduling.
/// The default (full) mode emits everything, including wall-clock timings.
struct ExportOptions {
  bool deterministic = false;
};

/// A whole run bundled for export: a metrics registry snapshot, the trace
/// buffer contents, and per-step scaling decisions. JSONL and CSV writers
/// emit fields in a fixed, documented order (schema `rpas_obs.v1`, see
/// EXPERIMENTS.md) so exports diff cleanly across runs.
class RunExport {
 public:
  RunExport(const MetricsRegistry* metrics, const TraceBuffer* trace,
            std::vector<ScalingDecision> decisions = {},
            ExportOptions options = {});

  /// Renders the export as JSON Lines. First line is a run header; then
  /// one line per counter, gauge, histogram, span, and decision, in that
  /// order, each sub-sequence deterministically sorted.
  std::string ToJsonl() const;

  /// Renders the export as one flat CSV: a fixed union-of-fields header,
  /// one row per record, empty cells where a field does not apply.
  std::string ToCsv() const;

  Status WriteJsonl(const std::string& path) const;
  Status WriteCsv(const std::string& path) const;

 private:
  const MetricsRegistry* metrics_;  // may be null
  const TraceBuffer* trace_;        // may be null
  std::vector<ScalingDecision> decisions_;
  ExportOptions options_;
};

/// Formats a double exactly (shortest round-trip form via %.17g with
/// trailing-zero trimming); shared by both writers so JSONL and CSV agree.
std::string FormatDouble(double value);

}  // namespace rpas::obs

#endif  // RPAS_OBS_EXPORT_H_
