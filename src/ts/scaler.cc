#include "ts/scaler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpas::ts {

namespace {
constexpr double kMinScale = 1e-9;
}

AffineScaler::AffineScaler(double shift, double scale)
    : shift_(shift), scale_(scale) {
  RPAS_CHECK(scale > 0.0) << "scale must be positive";
}

AffineScaler AffineScaler::FitStandard(const std::vector<double>& values) {
  RPAS_CHECK(!values.empty());
  double mean = 0.0;
  for (double v : values) {
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) {
    ss += (v - mean) * (v - mean);
  }
  const double sd =
      values.size() > 1
          ? std::sqrt(ss / static_cast<double>(values.size() - 1))
          : 0.0;
  return AffineScaler(mean, std::max(sd, kMinScale));
}

AffineScaler AffineScaler::FitMeanAbs(const std::vector<double>& values) {
  RPAS_CHECK(!values.empty());
  double mean_abs = 0.0;
  for (double v : values) {
    mean_abs += std::fabs(v);
  }
  mean_abs /= static_cast<double>(values.size());
  return AffineScaler(0.0, std::max(mean_abs, kMinScale));
}

AffineScaler AffineScaler::FitMinMax(const std::vector<double>& values) {
  RPAS_CHECK(!values.empty());
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  return AffineScaler(*mn, std::max(*mx - *mn, kMinScale));
}

std::vector<double> AffineScaler::Transform(
    const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    out.push_back(Transform(x));
  }
  return out;
}

std::vector<double> AffineScaler::Inverse(const std::vector<double>& ys) const {
  std::vector<double> out;
  out.reserve(ys.size());
  for (double y : ys) {
    out.push_back(Inverse(y));
  }
  return out;
}

}  // namespace rpas::ts
