#ifndef RPAS_TS_INCREMENTAL_H_
#define RPAS_TS_INCREMENTAL_H_

#include <cstddef>
#include <vector>

namespace rpas::ts {

/// Recursive per-point state trackers backing the streaming refresh path
/// (src/stream): each class consumes one observation at a time and exposes
/// the same statistic a batch pass over the full series would produce.
///
/// Equivalence contract: feeding a series point-by-point performs the exact
/// arithmetic, in the exact order, of the corresponding batch formula, so
/// the incremental value is bit-identical to a batch recompute — not merely
/// close (property_test asserts <= 1e-9; the implementation delivers ==).

/// Welford-style running mean/variance over a stream of observations.
class RunningMoments {
 public:
  void Push(double value);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (n denominator); 0 until two observations.
  double variance() const;
  /// Sample variance (n-1 denominator); 0 until two observations.
  double sample_variance() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Streaming counterpart of SeasonalNaiveForecaster::Fit's residual
/// estimate: keeps a ring of the last `season` observations and
/// accumulates the sum of squared seasonal differences
/// (w_t - w_{t-season})^2 in arrival order. Stddev() applies the same
/// sqrt(ss/n) with 1e-9 floor the batch fit does.
class SeasonalAccumulator {
 public:
  explicit SeasonalAccumulator(size_t season);

  void Push(double value);
  void Reset();

  size_t season() const { return season_; }
  /// Observations consumed so far.
  size_t count() const { return count_; }
  /// Seasonal differences accumulated (count - season once count > season).
  size_t num_diffs() const { return num_diffs_; }
  double sum_squares() const { return ss_; }
  /// max(sqrt(ss / num_diffs), 1e-9). Valid once num_diffs() > 0.
  double Stddev() const;

 private:
  size_t season_;
  std::vector<double> last_;  ///< ring of the last `season` observations
  size_t count_ = 0;
  size_t num_diffs_ = 0;
  double ss_ = 0.0;
};

/// Fixed ARIMA coefficients driving an ArimaResidualState (taken from a
/// fitted ArimaForecaster; the state tracks residuals, never re-estimates).
struct ArimaStateConfig {
  std::vector<double> phi;    ///< AR coefficients, phi[0] = phi_1
  std::vector<double> theta;  ///< MA coefficients
  double intercept = 0.0;
  /// Differencing lags in application order (seasonal first, then regular),
  /// exactly as ArimaForecaster::DifferenceLags() reports them.
  std::vector<size_t> diff_lags;
};

/// Streaming counterpart of ArimaForecaster::Fit's innovation-variance
/// estimate: pushes raw observations through the differencing pipeline,
/// runs the ARMA residual recursion e_t = x_t - (c + sum phi_i x_{t-1-i} +
/// sum theta_j e_{t-1-j}) with e = 0 during the max(p, q) warm-up, and
/// accumulates sum(e^2) from the warm-up on — the exact arithmetic of
/// ArmaResiduals() + the Fit() summation loop, one point at a time with
/// O(p + q + sum(lags)) retained state.
class ArimaResidualState {
 public:
  explicit ArimaResidualState(ArimaStateConfig config);

  void Push(double value);
  void PushAll(const std::vector<double>& values);
  void Reset();

  /// Raw observations consumed.
  size_t count() const { return raw_count_; }
  /// Residuals accumulated into the sum of squares (post warm-up).
  size_t num_residuals() const { return num_residuals_; }
  double sum_squares() const { return ss_; }
  /// max(ss/n, 1e-12) matching Fit's sigma2; 1.0 until the first residual.
  double Sigma2() const;

  const ArimaStateConfig& config() const { return config_; }

 private:
  struct DiffStage {
    size_t lag = 0;
    std::vector<double> ring;  ///< last `lag` inputs to this stage
    size_t count = 0;
  };

  void PushDifferenced(double x);

  ArimaStateConfig config_;
  std::vector<DiffStage> stages_;
  std::vector<double> x_ring_;  ///< last max(p, 1) differenced values
  std::vector<double> e_ring_;  ///< last max(q, 1) residuals
  size_t t_ = 0;                ///< differenced-series index
  size_t raw_count_ = 0;
  size_t num_residuals_ = 0;
  double ss_ = 0.0;
};

}  // namespace rpas::ts

#endif  // RPAS_TS_INCREMENTAL_H_
