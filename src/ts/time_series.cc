#include "ts/time_series.h"

#include <algorithm>
#include <cmath>

#include "common/csv.h"
#include "common/logging.h"
#include "common/strings.h"

namespace rpas::ts {

TimeSeries TimeSeries::Slice(size_t begin, size_t end) const {
  RPAS_CHECK(begin <= end && end <= values.size()) << "slice out of range";
  TimeSeries out;
  out.values.assign(values.begin() + static_cast<long>(begin),
                    values.begin() + static_cast<long>(end));
  out.step_minutes = step_minutes;
  out.name = name;
  return out;
}

std::pair<TimeSeries, TimeSeries> TimeSeries::SplitTail(size_t n) const {
  RPAS_CHECK(n <= values.size()) << "tail larger than series";
  return {Slice(0, values.size() - n), Slice(values.size() - n, values.size())};
}

double TimeSeries::Min() const {
  RPAS_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double TimeSeries::Max() const {
  RPAS_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double TimeSeries::Mean() const {
  RPAS_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double TimeSeries::Stddev() const {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double ss = 0.0;
  for (double v : values) {
    ss += (v - mean) * (v - mean);
  }
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

TimeSeries AggregateBlocks(const TimeSeries& series, size_t block) {
  RPAS_CHECK(block > 0);
  TimeSeries out;
  out.step_minutes = series.step_minutes * static_cast<double>(block);
  out.name = series.name;
  const size_t full_blocks = series.size() / block;
  out.values.reserve(full_blocks);
  for (size_t b = 0; b < full_blocks; ++b) {
    double sum = 0.0;
    for (size_t i = 0; i < block; ++i) {
      sum += series.values[b * block + i];
    }
    out.values.push_back(sum / static_cast<double>(block));
  }
  return out;
}

Result<TimeSeries> LoadTimeSeriesCsv(const std::string& path,
                                     const std::string& column,
                                     double step_minutes) {
  RPAS_ASSIGN_OR_RETURN(CsvTable table, ReadCsv(path));
  RPAS_ASSIGN_OR_RETURN(std::vector<double> values,
                        CsvNumericColumn(table, column));
  TimeSeries series;
  series.values = std::move(values);
  series.step_minutes = step_minutes;
  series.name = column;
  return series;
}

Status SaveTimeSeriesCsv(const std::string& path, const TimeSeries& series) {
  CsvTable table;
  table.header = {"step", "value"};
  table.rows.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    table.rows.push_back(
        {std::to_string(i), StrFormat("%.10g", series.values[i])});
  }
  return WriteCsv(path, table);
}

}  // namespace rpas::ts
