#ifndef RPAS_TS_METRICS_H_
#define RPAS_TS_METRICS_H_

#include <map>
#include <vector>

#include "ts/quantile_forecast.h"

namespace rpas::ts {

/// Pinball / quantile loss rho_tau(y, y_hat) = (tau - I(y < y_hat)) *
/// (y_hat - y)  (paper Eq. 1). Non-negative; zero iff y == y_hat.
double PinballLoss(double tau, double actual, double predicted);

/// Forecast-accuracy metrics from the paper's §IV-B, computed over a set of
/// evaluation windows.
struct AccuracyReport {
  /// wQL[tau] = 2 * sum(rho_tau) / sum(y), per requested level.
  std::map<double, double> wql;
  /// Coverage[tau]: fraction of points whose tau-quantile forecast is
  /// >= the realized value. Perfect calibration: Coverage[tau] == tau.
  std::map<double, double> coverage;
  /// Mean of wQL over the requested levels.
  double mean_wql = 0.0;
  /// MSE / MAE of the point forecast (median trajectory).
  double mse = 0.0;
  double mae = 0.0;
  /// Number of (window, step) points scored.
  size_t num_points = 0;
};

/// Scores a batch of quantile forecasts against aligned realized values.
/// `actuals[i]` must have the same length as `forecasts[i].Horizon()`.
/// `levels` selects which quantile levels are reported; each must be
/// available from the forecasts (stored or interpolable).
AccuracyReport EvaluateForecasts(
    const std::vector<QuantileForecast>& forecasts,
    const std::vector<std::vector<double>>& actuals,
    const std::vector<double>& levels);

/// Mean-over-levels weighted quantile loss of a single forecast against the
/// first `actual.size()` realized steps (actual.size() <= Horizon()). The
/// single-forecast prefix counterpart of EvaluateForecasts().mean_wql, used
/// by the streaming refresher's drift guard to score the plan in force with
/// however many steps have elapsed. Returns 0 when `actual` is empty.
double PrefixMeanWql(const QuantileForecast& forecast,
                     const std::vector<double>& actual);

/// Per-step quantile loss of a single forecast, summed over the level grid
/// (used for the paper's Figure 6 uncertainty/accuracy correlation).
std::vector<double> PerStepQuantileLoss(const QuantileForecast& forecast,
                                        const std::vector<double>& actual);

/// Per-step squared error of the median trajectory.
std::vector<double> PerStepSquaredError(const QuantileForecast& forecast,
                                        const std::vector<double>& actual);

/// Pearson correlation coefficient of two equal-length vectors
/// (0 when either side is constant).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace rpas::ts

#endif  // RPAS_TS_METRICS_H_
