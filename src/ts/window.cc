#include "ts/window.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace rpas::ts {

WindowDataset::WindowDataset(const TimeSeries& series, size_t context_length,
                             size_t horizon, size_t stride,
                             size_t index_offset)
    : context_length_(context_length), horizon_(horizon) {
  RPAS_CHECK(context_length > 0 && horizon > 0 && stride > 0);
  if (series.size() < context_length + horizon) {
    return;  // empty dataset
  }
  const size_t last_begin = series.size() - context_length - horizon;
  for (size_t begin = 0; begin <= last_begin; begin += stride) {
    Window w;
    w.begin = index_offset + begin;
    w.context.assign(
        series.values.begin() + static_cast<long>(begin),
        series.values.begin() + static_cast<long>(begin + context_length));
    w.target.assign(series.values.begin() +
                        static_cast<long>(begin + context_length),
                    series.values.begin() + static_cast<long>(
                                                begin + context_length +
                                                horizon));
    windows_.push_back(std::move(w));
  }
}

tensor::Matrix WindowDataset::ContextMatrix() const {
  tensor::Matrix m(windows_.size(), context_length_);
  for (size_t i = 0; i < windows_.size(); ++i) {
    for (size_t j = 0; j < context_length_; ++j) {
      m(i, j) = windows_[i].context[j];
    }
  }
  return m;
}

tensor::Matrix WindowDataset::TargetMatrix() const {
  tensor::Matrix m(windows_.size(), horizon_);
  for (size_t i = 0; i < windows_.size(); ++i) {
    for (size_t j = 0; j < horizon_; ++j) {
      m(i, j) = windows_[i].target[j];
    }
  }
  return m;
}

std::vector<size_t> WindowDataset::SampleIndices(size_t count,
                                                 Rng* rng) const {
  std::vector<size_t> indices(windows_.size());
  std::iota(indices.begin(), indices.end(), size_t{0});
  if (count >= indices.size()) {
    return indices;
  }
  // Partial Fisher–Yates.
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + rng->UniformInt(indices.size() - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

void WindowDataset::Batch(const std::vector<size_t>& indices,
                          tensor::Matrix* contexts,
                          tensor::Matrix* targets) const {
  RPAS_CHECK(contexts != nullptr && targets != nullptr);
  *contexts = tensor::Matrix(indices.size(), context_length_);
  *targets = tensor::Matrix(indices.size(), horizon_);
  for (size_t i = 0; i < indices.size(); ++i) {
    RPAS_CHECK(indices[i] < windows_.size()) << "window index out of range";
    const Window& w = windows_[indices[i]];
    for (size_t j = 0; j < context_length_; ++j) {
      (*contexts)(i, j) = w.context[j];
    }
    for (size_t j = 0; j < horizon_; ++j) {
      (*targets)(i, j) = w.target[j];
    }
  }
}

}  // namespace rpas::ts
