#ifndef RPAS_TS_TIME_SERIES_H_
#define RPAS_TS_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace rpas::ts {

/// Uniformly-sampled univariate workload time series (paper Definition 1).
/// The workload metric is deliberately unspecified — CPU percentage, query
/// arrival rate, memory — matching the paper's metric-agnostic definition;
/// RPAS benches use aggregated CPU utilization at 10-minute intervals.
struct TimeSeries {
  /// Observations w_1 .. w_T.
  std::vector<double> values;
  /// Sampling interval in minutes (paper aggregates traces at 10 minutes).
  double step_minutes = 10.0;
  /// Human-readable label ("alibaba-cpu", "google-cpu", ...).
  std::string name;

  size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
  double operator[](size_t i) const { return values[i]; }

  /// Copies the closed-open index range [begin, end).
  TimeSeries Slice(size_t begin, size_t end) const;

  /// Splits off the last `n` points: returns {head, tail}. Used for
  /// train/test splits.
  std::pair<TimeSeries, TimeSeries> SplitTail(size_t n) const;

  double Min() const;
  double Max() const;
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for size < 2.
  double Stddev() const;
};

/// Aggregates `series` by non-overlapping blocks of `block` points (mean per
/// block); used to re-aggregate fine-grained traces to 10-minute intervals.
TimeSeries AggregateBlocks(const TimeSeries& series, size_t block);

/// Loads a single numeric column from CSV as a time series.
Result<TimeSeries> LoadTimeSeriesCsv(const std::string& path,
                                     const std::string& column,
                                     double step_minutes = 10.0);

/// Saves a series as a two-column CSV (step, value).
Status SaveTimeSeriesCsv(const std::string& path, const TimeSeries& series);

}  // namespace rpas::ts

#endif  // RPAS_TS_TIME_SERIES_H_
