#include "ts/incremental.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpas::ts {

void RunningMoments::Push(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningMoments::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double RunningMoments::variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningMoments::sample_variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

SeasonalAccumulator::SeasonalAccumulator(size_t season)
    : season_(season), last_(season, 0.0) {
  RPAS_CHECK(season > 0) << "seasonal accumulator needs season >= 1";
}

void SeasonalAccumulator::Push(double value) {
  const size_t slot = count_ % season_;
  if (count_ >= season_) {
    // last_[slot] holds the observation from exactly one season ago; the
    // diff and the left-to-right ss accumulation mirror the batch fit's
    // `for t in [season, size)` loop term by term.
    const double diff = value - last_[slot];
    ss_ += diff * diff;
    ++num_diffs_;
  }
  last_[slot] = value;
  ++count_;
}

void SeasonalAccumulator::Reset() {
  std::fill(last_.begin(), last_.end(), 0.0);
  count_ = 0;
  num_diffs_ = 0;
  ss_ = 0.0;
}

double SeasonalAccumulator::Stddev() const {
  RPAS_CHECK(num_diffs_ > 0) << "Stddev() before the first seasonal diff";
  return std::max(std::sqrt(ss_ / static_cast<double>(num_diffs_)), 1e-9);
}

ArimaResidualState::ArimaResidualState(ArimaStateConfig config)
    : config_(std::move(config)) {
  stages_.reserve(config_.diff_lags.size());
  for (size_t lag : config_.diff_lags) {
    RPAS_CHECK(lag > 0) << "differencing lag must be >= 1";
    DiffStage stage;
    stage.lag = lag;
    stage.ring.assign(lag, 0.0);
    stages_.push_back(std::move(stage));
  }
  x_ring_.assign(std::max<size_t>(config_.phi.size(), 1), 0.0);
  e_ring_.assign(std::max<size_t>(config_.theta.size(), 1), 0.0);
}

void ArimaResidualState::Push(double value) {
  ++raw_count_;
  // Differencing pipeline: each stage emits in - ring[lag ago] once it has
  // seen `lag` inputs — the streaming form of DifferenceAtLag(), which
  // drops the first `lag` outputs of every stage.
  double v = value;
  for (DiffStage& stage : stages_) {
    const size_t slot = stage.count % stage.lag;
    const bool ready = stage.count >= stage.lag;
    const double out = v - stage.ring[slot];
    stage.ring[slot] = v;
    ++stage.count;
    if (!ready) {
      return;  // this observation is absorbed by the differencing warm-up
    }
    v = out;
  }
  PushDifferenced(v);
}

void ArimaResidualState::PushAll(const std::vector<double>& values) {
  for (double v : values) {
    Push(v);
  }
}

void ArimaResidualState::PushDifferenced(double x) {
  const size_t p = config_.phi.size();
  const size_t q = config_.theta.size();
  const size_t warmup = std::max(p, q);
  double e = 0.0;
  if (t_ >= warmup) {
    // Identical accumulation order to ArmaResiduals(): intercept, then the
    // AR terms ascending in lag, then the MA terms ascending in lag.
    double pred = config_.intercept;
    for (size_t i = 0; i < p; ++i) {
      pred += config_.phi[i] * x_ring_[(t_ - 1 - i) % x_ring_.size()];
    }
    for (size_t j = 0; j < q; ++j) {
      pred += config_.theta[j] * e_ring_[(t_ - 1 - j) % e_ring_.size()];
    }
    e = x - pred;
    ss_ += e * e;
    ++num_residuals_;
  }
  x_ring_[t_ % x_ring_.size()] = x;
  e_ring_[t_ % e_ring_.size()] = e;
  ++t_;
}

void ArimaResidualState::Reset() {
  for (DiffStage& stage : stages_) {
    std::fill(stage.ring.begin(), stage.ring.end(), 0.0);
    stage.count = 0;
  }
  std::fill(x_ring_.begin(), x_ring_.end(), 0.0);
  std::fill(e_ring_.begin(), e_ring_.end(), 0.0);
  t_ = 0;
  raw_count_ = 0;
  num_residuals_ = 0;
  ss_ = 0.0;
}

double ArimaResidualState::Sigma2() const {
  const double sigma2 =
      num_residuals_ > 0 ? ss_ / static_cast<double>(num_residuals_) : 1.0;
  return std::max(sigma2, 1e-12);
}

}  // namespace rpas::ts
