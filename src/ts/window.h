#ifndef RPAS_TS_WINDOW_H_
#define RPAS_TS_WINDOW_H_

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"
#include "ts/time_series.h"

namespace rpas::ts {

/// One (context, target) training window: context has `context_length`
/// points ending at split-1, target the following `horizon` points.
struct Window {
  size_t begin = 0;  ///< absolute index of the first context point
  std::vector<double> context;
  std::vector<double> target;
};

/// Sliding-window supervised dataset over a series (paper Definition 1:
/// context length T, forecast horizon H).
class WindowDataset {
 public:
  /// Enumerates all windows with the given stride. Requires
  /// context_length + horizon <= series.size() for a non-empty dataset.
  /// `index_offset` is the absolute position of series element 0 and is
  /// added to every Window::begin — pass it when `series` is a suffix slice
  /// so that calendar-phase features computed from `begin` stay aligned.
  WindowDataset(const TimeSeries& series, size_t context_length,
                size_t horizon, size_t stride = 1, size_t index_offset = 0);

  size_t size() const { return windows_.size(); }
  bool empty() const { return windows_.empty(); }
  const Window& operator[](size_t i) const { return windows_[i]; }

  size_t context_length() const { return context_length_; }
  size_t horizon() const { return horizon_; }

  /// Stacks all contexts into an N x T matrix.
  tensor::Matrix ContextMatrix() const;
  /// Stacks all targets into an N x H matrix.
  tensor::Matrix TargetMatrix() const;

  /// Selects `count` window indices uniformly without replacement
  /// (or all of them when count >= size()).
  std::vector<size_t> SampleIndices(size_t count, Rng* rng) const;

  /// Builds batch matrices (contexts: B x T, targets: B x H) for the given
  /// window indices.
  void Batch(const std::vector<size_t>& indices, tensor::Matrix* contexts,
             tensor::Matrix* targets) const;

 private:
  std::vector<Window> windows_;
  size_t context_length_;
  size_t horizon_;
};

}  // namespace rpas::ts

#endif  // RPAS_TS_WINDOW_H_
