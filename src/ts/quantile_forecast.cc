#include "ts/quantile_forecast.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpas::ts {

QuantileForecast::QuantileForecast(std::vector<double> levels,
                                   std::vector<std::vector<double>> values)
    : levels_(std::move(levels)), values_(std::move(values)) {
  RPAS_CHECK(!levels_.empty()) << "QuantileForecast needs >= 1 level";
  for (size_t q = 0; q < levels_.size(); ++q) {
    RPAS_CHECK(levels_[q] > 0.0 && levels_[q] < 1.0)
        << "quantile level outside (0,1)";
    if (q > 0) {
      RPAS_CHECK(levels_[q] > levels_[q - 1])
          << "quantile levels must be strictly increasing";
    }
  }
  for (const auto& row : values_) {
    RPAS_CHECK(row.size() == levels_.size())
        << "forecast row width != number of levels";
  }
}

double QuantileForecast::ValueAtIndex(size_t h, size_t q) const {
  RPAS_CHECK(h < values_.size() && q < levels_.size());
  return values_[h][q];
}

double QuantileForecast::Value(size_t h, double tau) const {
  RPAS_CHECK(h < values_.size()) << "horizon step out of range";
  RPAS_CHECK(tau > 0.0 && tau < 1.0) << "tau outside (0,1)";
  const auto& row = values_[h];
  if (tau <= levels_.front()) {
    return row.front();
  }
  if (tau >= levels_.back()) {
    return row.back();
  }
  // levels_ is sorted; find the bracketing pair.
  const auto it = std::lower_bound(levels_.begin(), levels_.end(), tau);
  const size_t hi = static_cast<size_t>(it - levels_.begin());
  if (std::fabs(levels_[hi] - tau) < 1e-12) {
    return row[hi];
  }
  const size_t lo = hi - 1;
  const double frac = (tau - levels_[lo]) / (levels_[hi] - levels_[lo]);
  return row[lo] + frac * (row[hi] - row[lo]);
}

std::vector<double> QuantileForecast::Median() const { return Trajectory(0.5); }

std::vector<double> QuantileForecast::Trajectory(double tau) const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (size_t h = 0; h < values_.size(); ++h) {
    out.push_back(Value(h, tau));
  }
  return out;
}

int QuantileForecast::LevelIndex(double tau) const {
  for (size_t q = 0; q < levels_.size(); ++q) {
    if (std::fabs(levels_[q] - tau) < 1e-9) {
      return static_cast<int>(q);
    }
  }
  return -1;
}

void QuantileForecast::SortQuantilesPerStep() {
  for (auto& row : values_) {
    for (size_t q = 1; q < row.size(); ++q) {
      row[q] = std::max(row[q], row[q - 1]);
    }
  }
}

}  // namespace rpas::ts
