#ifndef RPAS_TS_QUANTILE_FORECAST_H_
#define RPAS_TS_QUANTILE_FORECAST_H_

#include <vector>

#include "common/result.h"

namespace rpas::ts {

/// Multi-horizon quantile forecast (paper Definition 2): for each future
/// step h = 1..H and each quantile level tau in a sorted grid, the value
/// ŵ_{T+h}^tau. Produced by every probabilistic forecaster; consumed by the
/// robust auto-scaling manager.
class QuantileForecast {
 public:
  QuantileForecast() = default;

  /// `levels` must be strictly increasing inside (0, 1);
  /// `values[h][q]` is the level-q forecast at step h. Every row must have
  /// `levels.size()` entries, non-decreasing across q (non-crossing
  /// quantiles). Construction CHECK-fails on malformed shapes.
  QuantileForecast(std::vector<double> levels,
                   std::vector<std::vector<double>> values);

  size_t Horizon() const { return values_.size(); }
  const std::vector<double>& Levels() const { return levels_; }

  /// Forecast at step `h` (0-based) and stored level index `q`.
  double ValueAtIndex(size_t h, size_t q) const;

  /// Forecast at step `h` for an arbitrary level `tau` in (0,1): exact when
  /// tau is on the stored grid, linear interpolation between neighbours,
  /// clamped to the outermost stored levels otherwise.
  double Value(size_t h, double tau) const;

  /// Median trajectory (tau = 0.5).
  std::vector<double> Median() const;
  /// Whole trajectory at a given level.
  std::vector<double> Trajectory(double tau) const;

  /// Index of `tau` in Levels(), or -1 if absent (tolerance 1e-9).
  int LevelIndex(double tau) const;

  /// Enforces monotone non-crossing quantiles per step by running an
  /// isotonic pass (cumulative max). Sampling-based forecasters call this
  /// to clean small sample noise.
  void SortQuantilesPerStep();

 private:
  std::vector<double> levels_;
  std::vector<std::vector<double>> values_;  // [horizon][level]
};

}  // namespace rpas::ts

#endif  // RPAS_TS_QUANTILE_FORECAST_H_
