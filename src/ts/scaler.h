#ifndef RPAS_TS_SCALER_H_
#define RPAS_TS_SCALER_H_

#include <vector>

namespace rpas::ts {

/// Affine normalization y = (x - shift) / scale fitted on training data.
/// Neural forecasters train on normalized values and invert forecasts back
/// to workload units.
class AffineScaler {
 public:
  /// Identity scaler.
  AffineScaler() : shift_(0.0), scale_(1.0) {}
  AffineScaler(double shift, double scale);

  /// Z-score scaler: shift = mean, scale = stddev (>= epsilon).
  static AffineScaler FitStandard(const std::vector<double>& values);
  /// DeepAR-style mean scaler: shift = 0, scale = mean(|x|) (>= epsilon).
  static AffineScaler FitMeanAbs(const std::vector<double>& values);
  /// Min-max to [0, 1].
  static AffineScaler FitMinMax(const std::vector<double>& values);

  double Transform(double x) const { return (x - shift_) / scale_; }
  double Inverse(double y) const { return y * scale_ + shift_; }

  std::vector<double> Transform(const std::vector<double>& xs) const;
  std::vector<double> Inverse(const std::vector<double>& ys) const;

  double shift() const { return shift_; }
  double scale() const { return scale_; }

 private:
  double shift_;
  double scale_;
};

}  // namespace rpas::ts

#endif  // RPAS_TS_SCALER_H_
