#include "ts/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace rpas::ts {

double PinballLoss(double tau, double actual, double predicted) {
  // Standard (non-negative) pinball loss. Note the paper's Eq. 1 prints the
  // last factor as (y_hat - y); taken literally that is negative for
  // underestimation, so we use the standard orientation (tau - I) * (y -
  // y_hat), which matches the quantile-regression literature and the
  // GluonTS implementation the paper evaluates with.
  const double indicator = actual < predicted ? 1.0 : 0.0;
  return (tau - indicator) * (actual - predicted);
}

AccuracyReport EvaluateForecasts(
    const std::vector<QuantileForecast>& forecasts,
    const std::vector<std::vector<double>>& actuals,
    const std::vector<double>& levels) {
  RPAS_CHECK(forecasts.size() == actuals.size())
      << "forecast/actual count mismatch";
  RPAS_CHECK(!levels.empty());

  AccuracyReport report;
  std::map<double, double> pinball_sums;
  std::map<double, size_t> covered_counts;
  for (double tau : levels) {
    pinball_sums[tau] = 0.0;
    covered_counts[tau] = 0;
  }
  double actual_sum = 0.0;
  double se_sum = 0.0;
  double ae_sum = 0.0;
  size_t n = 0;

  for (size_t i = 0; i < forecasts.size(); ++i) {
    const QuantileForecast& fc = forecasts[i];
    const std::vector<double>& actual = actuals[i];
    RPAS_CHECK(actual.size() == fc.Horizon())
        << "actual length != forecast horizon";
    for (size_t h = 0; h < actual.size(); ++h) {
      const double y = actual[h];
      actual_sum += y;
      const double median = fc.Value(h, 0.5);
      se_sum += (median - y) * (median - y);
      ae_sum += std::fabs(median - y);
      ++n;
      for (double tau : levels) {
        const double pred = fc.Value(h, tau);
        pinball_sums[tau] += PinballLoss(tau, y, pred);
        if (pred >= y) {
          ++covered_counts[tau];
        }
      }
    }
  }

  report.num_points = n;
  if (n == 0) {
    return report;
  }
  const double denom = actual_sum != 0.0 ? actual_sum : 1.0;
  double wql_total = 0.0;
  for (double tau : levels) {
    const double wql = 2.0 * pinball_sums[tau] / denom;
    report.wql[tau] = wql;
    wql_total += wql;
    report.coverage[tau] =
        static_cast<double>(covered_counts[tau]) / static_cast<double>(n);
  }
  report.mean_wql = wql_total / static_cast<double>(levels.size());
  report.mse = se_sum / static_cast<double>(n);
  report.mae = ae_sum / static_cast<double>(n);
  return report;
}

double PrefixMeanWql(const QuantileForecast& forecast,
                     const std::vector<double>& actual) {
  RPAS_CHECK(actual.size() <= forecast.Horizon())
      << "more actuals than forecast horizon";
  if (actual.empty()) {
    return 0.0;
  }
  double actual_sum = 0.0;
  for (double y : actual) {
    actual_sum += y;
  }
  const double denom = actual_sum != 0.0 ? actual_sum : 1.0;
  const std::vector<double>& levels = forecast.Levels();
  RPAS_CHECK(!levels.empty());
  double wql_total = 0.0;
  for (size_t q = 0; q < levels.size(); ++q) {
    double pinball_sum = 0.0;
    for (size_t h = 0; h < actual.size(); ++h) {
      pinball_sum +=
          PinballLoss(levels[q], actual[h], forecast.ValueAtIndex(h, q));
    }
    wql_total += 2.0 * pinball_sum / denom;
  }
  return wql_total / static_cast<double>(levels.size());
}

std::vector<double> PerStepQuantileLoss(const QuantileForecast& forecast,
                                        const std::vector<double>& actual) {
  RPAS_CHECK(actual.size() == forecast.Horizon());
  std::vector<double> out(actual.size(), 0.0);
  for (size_t h = 0; h < actual.size(); ++h) {
    double sum = 0.0;
    for (size_t q = 0; q < forecast.Levels().size(); ++q) {
      sum += PinballLoss(forecast.Levels()[q], actual[h],
                         forecast.ValueAtIndex(h, q));
    }
    out[h] = sum;
  }
  return out;
}

std::vector<double> PerStepSquaredError(const QuantileForecast& forecast,
                                        const std::vector<double>& actual) {
  RPAS_CHECK(actual.size() == forecast.Horizon());
  std::vector<double> out(actual.size(), 0.0);
  for (size_t h = 0; h < actual.size(); ++h) {
    const double median = forecast.Value(h, 0.5);
    out[h] = (median - actual[h]) * (median - actual[h]);
  }
  return out;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  RPAS_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) {
    return 0.0;
  }
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace rpas::ts
