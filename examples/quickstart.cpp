// Quickstart: the smallest end-to-end RPAS program.
//
//   1. Generate a synthetic cluster CPU trace (the paper's workload).
//   2. Train a TFT-style probabilistic forecaster on its history.
//   3. Hand the forecaster to the Robust Auto-Scaling Manager with a
//      0.9-quantile robust strategy (paper Eq. 6).
//   4. Print the quantile forecast and the node plan for the next 6 hours.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/manager.h"
#include "core/strategies.h"
#include "forecast/tft.h"
#include "trace/generator.h"

int main() {
  using namespace rpas;

  // 1. Workload history: 2 weeks of aggregated CPU at 10-minute intervals.
  trace::SyntheticTraceGenerator generator(trace::AlibabaProfile(),
                                           /*seed=*/7);
  ts::TimeSeries history = generator.GenerateCpu(14 * 144);
  std::printf("trace '%s': %zu steps, mean %.1f, max %.1f\n",
              history.name.c_str(), history.size(), history.Mean(),
              history.Max());

  // 2. Probabilistic workload forecaster (quantile grid for scaling).
  forecast::TftForecaster::Options model_options;
  model_options.context_length = 72;  // 12 hours
  model_options.horizon = 36;         // 6 hours
  model_options.d_model = 8;
  model_options.batch_size = 2;
  model_options.train.steps = 150;
  model_options.levels = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99};
  forecast::TftForecaster model(model_options);
  Status fit = model.Fit(history);
  if (!fit.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", fit.ToString().c_str());
    return 1;
  }
  std::printf("trained %s\n", model.Name().c_str());

  // 3. Robust Auto-Scaling Manager: one node absorbs `theta` workload
  //    units; plan against the 0.9-quantile forecast.
  core::ScalingConfig config;
  config.theta = history.Mean() / 4.0;  // ~4 nodes at average load
  config.min_nodes = 1;
  core::RobustAutoScalingManager manager(
      &model, std::make_unique<core::RobustQuantileAllocator>(0.9), config);

  auto plan = manager.PlanNext(history, /*current_nodes=*/4);
  if (!plan.ok()) {
    std::fprintf(stderr, "Planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // 4. Show the decision: median & 0.9-quantile forecast, uncertainty U,
  //    and the node allocation per future step.
  std::printf("\n%5s  %10s  %10s  %12s  %6s\n", "step", "w^0.5", "w^0.9",
              "uncertainty", "nodes");
  for (size_t h = 0; h < plan->nodes.size(); h += 6) {
    std::printf("%5zu  %10.2f  %10.2f  %12.3f  %6d\n", h,
                plan->forecast.Value(h, 0.5), plan->forecast.Value(h, 0.9),
                plan->uncertainty[h], plan->nodes[h]);
  }
  return 0;
}
