// Capacity planner: the full paper pipeline as a command-line tool.
//
// Generates (or loads) a cluster CPU trace, trains a probabilistic
// forecaster, runs the chosen auto-scaling strategy closed-loop over a
// held-out evaluation window, and replays the resulting allocation on the
// disaggregated-database cluster simulator — reporting under-/over-
// provisioning, SLO violations, utilization, node-hours and thrashing.
//
// Usage:
//   capacity_planner [--trace=alibaba|google] [--model=tft|deepar]
//                    [--head=studentt|gaussian]   (DeepAR only)
//                    [--strategy=point|robust|adaptive|reactive]
//                    [--tau=0.9] [--tau2=0.99] [--days=21] [--smooth]
//                    [--online]   (closed-loop: re-forecast as data arrives)
//                    [--csv=FILE]                 (export trace to CSV)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/evaluator.h"
#include "core/manager.h"
#include "core/online_loop.h"
#include "core/strategies.h"
#include "core/uncertainty.h"
#include "forecast/deepar.h"
#include "forecast/tft.h"
#include "simdb/replay.h"
#include "trace/generator.h"

namespace {

struct Args {
  std::string trace = "alibaba";
  std::string model = "tft";
  std::string head = "studentt";
  std::string strategy = "robust";
  double tau = 0.9;
  double tau2 = 0.99;
  int days = 21;
  bool smooth = false;
  bool online = false;
  std::string csv;
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--trace=")) {
      args.trace = v;
    } else if (const char* v = value("--model=")) {
      args.model = v;
    } else if (const char* v = value("--head=")) {
      args.head = v;
    } else if (const char* v = value("--strategy=")) {
      args.strategy = v;
    } else if (const char* v = value("--tau=")) {
      args.tau = std::atof(v);
    } else if (const char* v = value("--tau2=")) {
      args.tau2 = std::atof(v);
    } else if (const char* v = value("--days=")) {
      args.days = std::atoi(v);
    } else if (arg == "--smooth") {
      args.smooth = true;
    } else if (arg == "--online") {
      args.online = true;
    } else if (const char* v = value("--csv=")) {
      args.csv = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpas;
  const Args args = Parse(argc, argv);
  constexpr size_t kDay = 144;
  constexpr size_t kContext = 72;
  constexpr size_t kHorizon = 72;

  // --- Workload trace ---
  trace::TraceProfile profile = args.trace == "google"
                                    ? trace::GoogleProfile()
                                    : trace::AlibabaProfile();
  trace::SyntheticTraceGenerator generator(profile, /*seed=*/2024);
  ts::TimeSeries series =
      generator.GenerateCpu(static_cast<size_t>(args.days) * kDay);
  if (!args.csv.empty()) {
    Status s = ts::SaveTimeSeriesCsv(args.csv, series);
    std::printf("trace exported to %s: %s\n", args.csv.c_str(),
                s.ToString().c_str());
  }
  const size_t eval_steps = 3 * kDay;
  const size_t eval_start = series.size() - eval_steps;
  ts::TimeSeries train = series.Slice(0, eval_start);
  std::printf("trace=%s steps=%zu train=%zu eval=%zu\n", args.trace.c_str(),
              series.size(), train.size(), eval_steps);

  core::ScalingConfig config;
  config.theta = series.Mean() / 4.0;
  config.min_nodes = 1;

  // --- Forecaster ---
  std::unique_ptr<forecast::Forecaster> model;
  if (args.model == "deepar") {
    forecast::DeepArForecaster::Options options;
    options.context_length = kContext;
    options.horizon = kHorizon;
    options.hidden_dim = 32;
    options.batch_size = 8;
    options.train.steps = 200;
    options.levels = forecast::ScalingQuantileLevels();
    options.head = args.head == "gaussian"
                       ? forecast::DeepArForecaster::Head::kGaussian
                       : forecast::DeepArForecaster::Head::kStudentT;
    model = std::make_unique<forecast::DeepArForecaster>(options);
  } else {
    forecast::TftForecaster::Options options;
    options.context_length = kContext;
    options.horizon = kHorizon;
    options.d_model = 16;
    options.batch_size = 2;
    options.train.steps = 250;
    options.levels = forecast::ScalingQuantileLevels();
    model = std::make_unique<forecast::TftForecaster>(options);
  }
  Status fit = model->Fit(train);
  if (!fit.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", fit.ToString().c_str());
    return 1;
  }
  std::printf("model=%s trained\n", model->Name().c_str());

  // --- Online mode: closed-loop re-planning inside the simulator ---
  if (args.online) {
    std::unique_ptr<core::QuantileAllocator> allocator;
    if (args.strategy == "adaptive") {
      allocator = std::make_unique<core::AdaptiveQuantileAllocator>(
          args.tau, args.tau2, /*rho=*/0.0);
    } else if (args.strategy == "point") {
      allocator = std::make_unique<core::PointForecastAllocator>();
    } else {
      allocator = std::make_unique<core::RobustQuantileAllocator>(args.tau);
    }
    core::RobustAutoScalingManager manager(model.get(),
                                           std::move(allocator), config);
    if (args.smooth) {
      manager.SetSmoother({.max_step_delta = 3, .scale_in_cooldown = 3});
    }
    core::OnlineLoopOptions loop;
    loop.cluster.node_capacity = config.theta;
    loop.cluster.utilization_threshold = 1.0;
    loop.cluster.initial_nodes = 4;
    auto result =
        core::RunOnlineLoop(manager, series, eval_start, eval_steps, loop);
    if (!result.ok()) {
      std::fprintf(stderr, "online loop failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n--- online closed-loop run (%zu plans) ---\n",
                result->plans_made);
    std::printf("under-provisioning rate : %.3f\n",
                result->under_provision_rate);
    std::printf("over-provisioning rate  : %.3f\n",
                result->over_provision_rate);
    std::printf("mean utilization        : %.3f\n",
                result->mean_utilization);
    std::printf("SLO violation rate      : %.3f\n",
                result->slo_violation_rate);
    std::printf("node-steps (cost)       : %lld\n",
                static_cast<long long>(result->total_node_steps));
    std::printf("scale events            : %d (direction changes %d)\n",
                result->scale_events, result->direction_changes);
    std::printf("mean forecast U         : %.3f\n",
                result->mean_uncertainty);
    return 0;
  }

  // --- Allocation over the evaluation window ---
  Result<std::vector<int>> alloc = [&]() -> Result<std::vector<int>> {
    if (args.strategy == "reactive") {
      core::ReactiveAvgStrategy reactive(6, 6.0);
      return core::RunReactiveStrategy(reactive, series, eval_start,
                                       eval_steps, config);
    }
    if (args.strategy == "point") {
      core::PointForecastAllocator point;
      return core::RunPredictiveStrategy(*model, point, series, eval_start,
                                         eval_steps, config);
    }
    if (args.strategy == "adaptive") {
      core::AdaptiveQuantileAllocator adaptive(args.tau, args.tau2,
                                               /*rho=*/0.0);
      return core::RunPredictiveStrategy(*model, adaptive, series,
                                         eval_start, eval_steps, config);
    }
    core::RobustQuantileAllocator robust(args.tau);
    return core::RunPredictiveStrategy(*model, robust, series, eval_start,
                                       eval_steps, config);
  }();
  if (!alloc.ok()) {
    std::fprintf(stderr, "allocation failed: %s\n",
                 alloc.status().ToString().c_str());
    return 1;
  }
  std::vector<int> plan = *alloc;
  if (args.smooth) {
    core::ScalingSmoother smoother(
        {.max_step_delta = 3, .scale_in_cooldown = 3});
    plan = smoother.Smooth(plan, plan.front());
    std::printf("thrashing control enabled (delta<=3, cooldown 3)\n");
  }

  // --- Analytic provisioning metrics (paper §IV-C) ---
  std::vector<double> realized(
      series.values.begin() + static_cast<long>(eval_start),
      series.values.end());
  const auto report = core::EvaluateAllocation(realized, plan, config);
  std::printf("\n--- provisioning (strategy=%s tau=%.2f) ---\n",
              args.strategy.c_str(), args.tau);
  std::printf("under-provisioning rate : %.3f\n",
              report.under_provision_rate);
  std::printf("over-provisioning rate  : %.3f\n",
              report.over_provision_rate);
  std::printf("mean allocated nodes    : %.2f (required %.2f)\n",
              report.mean_allocated_nodes, report.mean_required_nodes);

  // --- Cluster-simulator replay (realized utilization, SLO, thrashing) ---
  ts::TimeSeries eval_series;
  eval_series.values = realized;
  eval_series.step_minutes = series.step_minutes;
  simdb::Cluster::Options cluster;
  cluster.node_capacity = config.theta;
  cluster.utilization_threshold = 1.0;
  cluster.initial_nodes = plan.front();
  auto replay = simdb::ReplayAllocation(eval_series, plan, cluster);
  if (!replay.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replay.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- simulator replay ---\n");
  std::printf("mean utilization        : %.3f\n", replay->mean_utilization);
  std::printf("SLO violation rate      : %.3f\n",
              replay->slo_violation_rate);
  std::printf("node-steps (cost)       : %lld\n",
              static_cast<long long>(replay->total_node_steps));
  std::printf("scale events            : %d (direction changes %d)\n",
              replay->scale_events, replay->direction_changes);
  return 0;
}
