// Adaptive uncertainty-aware scaling (paper Algorithm 1), step by step:
//
//   1. Train a quantile forecaster on a bursty (Google-like) trace.
//   2. Calibrate the uncertainty threshold rho from historical forecasts —
//      the paper's recommended procedure (§III-C2).
//   3. Compare three strategies over a held-out window: fixed optimistic
//      (tau1), fixed conservative (tau2), and adaptive switching on U.
//
// The adaptive strategy should match the conservative one on
// under-provisioning while over-provisioning less (paper Fig. 11).
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/evaluator.h"
#include "core/strategies.h"
#include "core/uncertainty.h"
#include "forecast/tft.h"
#include "trace/generator.h"

int main() {
  using namespace rpas;
  constexpr size_t kDay = 144;
  constexpr size_t kContext = 72;
  constexpr size_t kHorizon = 72;
  constexpr double kTau1 = 0.8;
  constexpr double kTau2 = 0.95;

  // 1. Bursty trace + quantile forecaster.
  trace::SyntheticTraceGenerator generator(trace::GoogleProfile(), 99);
  ts::TimeSeries series = generator.GenerateCpu(21 * kDay);
  const size_t eval_steps = 3 * kDay;
  const size_t eval_start = series.size() - eval_steps;
  ts::TimeSeries train = series.Slice(0, eval_start);

  forecast::TftForecaster::Options options;
  options.context_length = kContext;
  options.horizon = kHorizon;
  options.d_model = 16;
  options.batch_size = 2;
  options.train.steps = 250;
  options.levels = forecast::ScalingQuantileLevels();
  forecast::TftForecaster model(options);
  if (Status s = model.Fit(train); !s.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", s.ToString().c_str());
    return 1;
  }

  core::ScalingConfig config;
  config.theta = series.Mean() / 4.0;

  // 2. Calibrate rho: median per-step uncertainty U over forecasts rolled
  //    on the last two training days.
  std::vector<double> all_u;
  {
    const size_t calib = 2 * kDay;
    ts::TimeSeries head = train.Slice(0, train.size() - calib);
    ts::TimeSeries tail = train.Slice(train.size() - calib, train.size());
    auto rolled = forecast::RollForecasts(model, head, tail, kHorizon);
    if (!rolled.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   rolled.status().ToString().c_str());
      return 1;
    }
    for (const auto& fc : rolled->forecasts) {
      auto u = core::QuantileUncertaintyPerStep(fc);
      all_u.insert(all_u.end(), u.begin(), u.end());
    }
  }
  std::sort(all_u.begin(), all_u.end());
  const double rho = all_u[all_u.size() / 2];
  std::printf("calibrated rho = %.3f (U range [%.3f, %.3f])\n", rho,
              all_u.front(), all_u.back());

  // 3. Fixed vs adaptive comparison on the held-out window.
  std::vector<double> realized(
      series.values.begin() + static_cast<long>(eval_start),
      series.values.end());
  auto evaluate = [&](const char* name,
                      const core::QuantileAllocator& allocator) {
    auto alloc = core::RunPredictiveStrategy(model, allocator, series,
                                             eval_start, eval_steps, config);
    if (!alloc.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   alloc.status().ToString().c_str());
      std::exit(1);
    }
    const auto report = core::EvaluateAllocation(realized, *alloc, config);
    std::printf("%-22s under=%.3f over=%.3f mean_nodes=%.2f\n", name,
                report.under_provision_rate, report.over_provision_rate,
                report.mean_allocated_nodes);
  };

  std::printf("\nstrategy               under  over  nodes\n");
  core::RobustQuantileAllocator fixed_lo(kTau1);
  core::RobustQuantileAllocator fixed_hi(kTau2);
  core::AdaptiveQuantileAllocator adaptive(kTau1, kTau2, rho);
  evaluate("fixed tau=0.80", fixed_lo);
  evaluate("fixed tau=0.95", fixed_hi);
  evaluate("adaptive 0.80/0.95", adaptive);

  std::printf(
      "\nThe adaptive strategy allocates conservatively only when the\n"
      "forecast itself signals high uncertainty (U >= rho), recovering\n"
      "most of the conservative strategy's robustness at lower cost.\n");
  return 0;
}
