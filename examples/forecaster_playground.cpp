// Forecaster playground: trains every forecaster in the library on the
// same trace and prints a side-by-side accuracy comparison plus one sampled
// horizon — a compact tour of the forecasting API (paper §III-B / Table I
// in miniature).
//
// Usage: forecaster_playground [--trace=alibaba|google]
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "forecast/arima.h"
#include "forecast/deepar.h"
#include "forecast/holt_winters.h"
#include "forecast/mlp.h"
#include "forecast/qb5000.h"
#include "forecast/seasonal_naive.h"
#include "forecast/tft.h"
#include "trace/generator.h"
#include "ts/metrics.h"

int main(int argc, char** argv) {
  using namespace rpas;
  constexpr size_t kDay = 144;
  constexpr size_t kContext = 72;
  constexpr size_t kHorizon = 36;

  std::string trace_name = "alibaba";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_name = argv[i] + 8;
    }
  }
  trace::TraceProfile profile = trace_name == "google"
                                    ? trace::GoogleProfile()
                                    : trace::AlibabaProfile();
  trace::SyntheticTraceGenerator generator(profile, 31337);
  ts::TimeSeries series = generator.GenerateCpu(21 * kDay);
  auto [train, test] = series.SplitTail(3 * kDay);
  std::printf("trace=%s train=%zu test=%zu\n", trace_name.c_str(),
              train.size(), test.size());

  const std::vector<double> levels = forecast::DefaultQuantileLevels();
  std::vector<std::unique_ptr<forecast::Forecaster>> models;
  {
    forecast::ArimaForecaster::Options o;
    o.context_length = kContext;
    o.horizon = kHorizon;
    o.levels = levels;
    models.push_back(std::make_unique<forecast::ArimaForecaster>(o));
  }
  {
    forecast::SeasonalNaiveForecaster::Options o;
    o.context_length = kContext;
    o.horizon = kHorizon;
    o.season = kDay;
    o.levels = levels;
    models.push_back(std::make_unique<forecast::SeasonalNaiveForecaster>(o));
  }
  {
    forecast::HoltWintersForecaster::Options o;
    o.context_length = 2 * kDay;
    o.horizon = kHorizon;
    o.season = kDay;
    o.levels = levels;
    models.push_back(std::make_unique<forecast::HoltWintersForecaster>(o));
  }
  {
    forecast::MlpForecaster::Options o;
    o.context_length = kContext;
    o.horizon = kHorizon;
    o.hidden_dim = 32;
    o.train.steps = 200;
    o.levels = levels;
    models.push_back(std::make_unique<forecast::MlpForecaster>(o));
  }
  {
    forecast::DeepArForecaster::Options o;
    o.context_length = kContext;
    o.horizon = kHorizon;
    o.hidden_dim = 24;
    o.batch_size = 8;
    o.num_samples = 80;
    o.train.steps = 150;
    o.levels = levels;
    models.push_back(std::make_unique<forecast::DeepArForecaster>(o));
  }
  {
    forecast::TftForecaster::Options o;
    o.context_length = kContext;
    o.horizon = kHorizon;
    o.d_model = 12;
    o.batch_size = 2;
    o.train.steps = 200;
    o.levels = levels;
    models.push_back(std::make_unique<forecast::TftForecaster>(o));
  }
  {
    forecast::Qb5000Forecaster::Options o;
    o.context_length = kContext;
    o.horizon = kHorizon;
    o.train.steps = 100;
    models.push_back(std::make_unique<forecast::Qb5000Forecaster>(o));
  }

  std::printf("\n%-14s %10s %10s %10s %10s\n", "model", "mean_wQL",
              "wQL[0.9]", "Cov[0.9]", "MSE");
  for (auto& model : models) {
    if (Status s = model->Fit(train); !s.ok()) {
      std::fprintf(stderr, "%s fit failed: %s\n", model->Name().c_str(),
                   s.ToString().c_str());
      continue;
    }
    auto rolled = forecast::RollForecasts(*model, train, test, kHorizon);
    if (!rolled.ok()) {
      std::fprintf(stderr, "%s roll failed: %s\n", model->Name().c_str(),
                   rolled.status().ToString().c_str());
      continue;
    }
    // Score at the levels the model actually produces (QB5000 is a point
    // forecaster exposing only the median).
    const std::vector<double> score_levels =
        model->Levels().size() > 1 ? std::vector<double>{0.5, 0.9}
                                   : std::vector<double>{0.5};
    auto report = ts::EvaluateForecasts(rolled->forecasts, rolled->actuals,
                                        score_levels);
    if (score_levels.size() > 1) {
      std::printf("%-14s %10.4f %10.4f %10.3f %10.1f\n",
                  model->Name().c_str(), report.mean_wql,
                  report.wql.at(0.9), report.coverage.at(0.9), report.mse);
    } else {
      std::printf("%-14s %10.4f %10s %10s %10.1f\n", model->Name().c_str(),
                  report.mean_wql, "-", "-", report.mse);
    }
  }

  std::printf(
      "\nNote: scores use each model's own quantile grid; QB5000 is a\n"
      "point forecaster and reports only median-based metrics.\n");
  return 0;
}
