// rpas_quantize — converts text checkpoints (nn/checkpoint.h) to the
// quantized, memory-mappable rpasq.v1 format, and inspects rpasq files.
//
// Usage:
//   rpas_quantize --in=model.ckpt --out=model.rpasq [--dtype=q8]
//       Converts a text checkpoint. --dtype selects the storage type for
//       weight matrices (q8 | f16 | f32 | f64, default q8); vectors and
//       tiny tensors always stay exact fp64 (see nn::StorageDType). The
//       output is written via temp file + atomic rename, so it is safe to
//       replace a checkpoint that is currently being served from a mapping.
//
//   rpas_quantize --inspect=model.rpasq
//       Validates an rpasq.v1 file (header, checksums, bounds) and prints
//       its tensor table.
//
// Exit status: 0 on success, 1 on a conversion/validation error, 2 on
// usage errors.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "nn/qcheckpoint.h"
#include "tensor/quant.h"

namespace {

using namespace rpas;

size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return 0;
  }
  const std::streamoff size = in.tellg();
  return size > 0 ? static_cast<size_t>(size) : 0;
}

int Usage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  rpas_quantize --in=model.ckpt --out=model.rpasq "
               "[--dtype=q8|f16|f32|f64]\n"
               "  rpas_quantize --inspect=model.rpasq\n");
  return out == stdout ? 0 : 2;
}

int Inspect(const std::string& path) {
  auto mapped = nn::QuantizedCheckpoint::Map(path);
  if (!mapped.ok()) {
    std::fprintf(stderr, "rpas_quantize: %s: %s\n", path.c_str(),
                 mapped.status().ToString().c_str());
    return 1;
  }
  const nn::QuantizedCheckpoint& ckpt = **mapped;
  std::printf("%s: rpasq.v1, %zu tensors, %zu bytes (%s)\n", path.c_str(),
              ckpt.num_tensors(), ckpt.file_bytes(),
              ckpt.is_mapped() ? "mapped" : "heap");
  std::printf("signature: %s\n", ckpt.signature().c_str());
  std::printf("%-8s %-6s %10s %10s %12s\n", "name", "dtype", "rows", "cols",
              "bytes");
  for (size_t i = 0; i < ckpt.num_tensors(); ++i) {
    const nn::QTensor& t = ckpt.tensor(i);
    std::printf("%-8s %-6s %10zu %10zu %12zu\n", t.name.c_str(),
                tensor::DTypeName(t.view.dtype), t.view.rows, t.view.cols,
                t.view.payload_bytes);
  }
  return 0;
}

int Convert(const std::string& in_path, const std::string& out_path,
            const std::string& dtype_name) {
  const Result<tensor::DType> target = tensor::ParseDType(dtype_name);
  if (!target.ok()) {
    std::fprintf(stderr, "rpas_quantize: unknown --dtype=%s\n",
                 dtype_name.c_str());
    return 2;
  }
  const Status status =
      nn::QuantizeCheckpointFile(in_path, out_path, *target);
  if (!status.ok()) {
    std::fprintf(stderr, "rpas_quantize: %s\n", status.ToString().c_str());
    return 1;
  }
  const size_t in_bytes = FileBytes(in_path);
  const size_t out_bytes = FileBytes(out_path);
  std::printf("%s (%zu bytes) -> %s (%zu bytes, dtype=%s, %.2fx smaller)\n",
              in_path.c_str(), in_bytes, out_path.c_str(), out_bytes,
              tensor::DTypeName(*target),
              out_bytes > 0 ? static_cast<double>(in_bytes) /
                                  static_cast<double>(out_bytes)
                            : 0.0);
  return Inspect(out_path);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return Usage(stdout);
    }
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "rpas_quantize: unexpected argument: %s\n", arg);
      return Usage(stderr);
    }
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) {
      flags[std::string(arg + 2)] = "1";
    } else {
      flags[std::string(arg + 2, eq)] = eq + 1;
    }
  }
  if (flags.count("inspect") > 0) {
    return Inspect(flags["inspect"]);
  }
  if (flags.count("in") == 0 || flags.count("out") == 0) {
    return Usage(stderr);
  }
  const std::string dtype =
      flags.count("dtype") > 0 ? flags["dtype"] : "q8";
  return Convert(flags["in"], flags["out"], dtype);
}
