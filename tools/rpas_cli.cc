// rpas — command-line front end for the RPAS library.
//
// Subcommands:
//   rpas generate  --out=trace.csv [--trace=alibaba|google] [--days=21]
//                  [--seed=7] [--column=value]
//       Synthesizes a cluster CPU trace and writes it as CSV.
//
//   rpas train     --data=trace.csv --ckpt=model.ckpt [--model=tft|deepar|mlp]
//                  [--context=72] [--horizon=72] [--steps=400] [--seed=23]
//       Trains a probabilistic forecaster on the CSV series and saves a
//       checkpoint.
//
//   rpas forecast  --data=trace.csv --ckpt=model.ckpt [--model=...]
//                  [--context=72] [--horizon=72]
//       Restores the model and prints the quantile forecast conditioned on
//       the end of the series.
//
//   rpas plan      --data=trace.csv --ckpt=model.ckpt [--model=...]
//                  [--theta=50] [--tau=0.9] [--min-nodes=1]
//                  [--context=72] [--horizon=72]
//       Produces a node allocation plan from the forecast (paper Eq. 6).
//
//   rpas evaluate  --data=trace.csv --ckpt=model.ckpt [--model=...]
//                  [--test-steps=432] [--context=72] [--horizon=72]
//       Rolling evaluation of the restored model on the series tail.
//
// Model architecture flags must match between `train` and the restoring
// subcommands; the checkpoint signature enforces this.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "core/manager.h"
#include "core/strategies.h"
#include "forecast/deepar.h"
#include "forecast/forecaster.h"
#include "forecast/mlp.h"
#include "forecast/tft.h"
#include "trace/generator.h"
#include "ts/metrics.h"
#include "ts/time_series.h"

namespace {

using namespace rpas;

/// Minimal --key=value argument map.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg);
        std::exit(2);
      }
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        values_[std::string(arg + 2)] = "1";
      } else {
        values_[std::string(arg + 2, eq)] = eq + 1;
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

[[noreturn]] void Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

ts::TimeSeries LoadSeries(const Flags& flags) {
  const std::string path = flags.Require("data");
  const std::string column = flags.Get("column", "value");
  auto series = ts::LoadTimeSeriesCsv(path, column);
  if (!series.ok()) {
    Fail(series.status());
  }
  return std::move(series).value();
}

/// Builds the (untrained) model described by the flags. The same flags must
/// be passed to train and to the restoring subcommands.
struct ModelBundle {
  std::unique_ptr<forecast::Forecaster> forecaster;
  // Non-owning typed views for Save/Load dispatch.
  forecast::TftForecaster* tft = nullptr;
  forecast::DeepArForecaster* deepar = nullptr;
  forecast::MlpForecaster* mlp = nullptr;
};

ModelBundle BuildModel(const Flags& flags) {
  const std::string kind = flags.Get("model", "tft");
  const size_t context = static_cast<size_t>(flags.GetInt("context", 72));
  const size_t horizon = static_cast<size_t>(flags.GetInt("horizon", 72));
  const int steps = flags.GetInt("steps", 400);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 23));
  ModelBundle bundle;
  if (kind == "tft") {
    forecast::TftForecaster::Options options;
    options.context_length = context;
    options.horizon = horizon;
    options.d_model = static_cast<size_t>(flags.GetInt("d-model", 16));
    options.batch_size = 3;
    options.train.steps = steps;
    options.levels = forecast::ScalingQuantileLevels();
    options.seed = seed;
    auto model = std::make_unique<forecast::TftForecaster>(options);
    bundle.tft = model.get();
    bundle.forecaster = std::move(model);
  } else if (kind == "deepar") {
    forecast::DeepArForecaster::Options options;
    options.context_length = context;
    options.horizon = horizon;
    options.hidden_dim = static_cast<size_t>(flags.GetInt("hidden", 32));
    options.train.steps = steps;
    options.levels = forecast::ScalingQuantileLevels();
    options.seed = seed;
    auto model = std::make_unique<forecast::DeepArForecaster>(options);
    bundle.deepar = model.get();
    bundle.forecaster = std::move(model);
  } else if (kind == "mlp") {
    forecast::MlpForecaster::Options options;
    options.context_length = context;
    options.horizon = horizon;
    options.hidden_dim = static_cast<size_t>(flags.GetInt("hidden", 32));
    options.num_hidden_layers = 2;
    options.train.steps = steps;
    options.levels = forecast::ScalingQuantileLevels();
    options.seed = seed;
    auto model = std::make_unique<forecast::MlpForecaster>(options);
    bundle.mlp = model.get();
    bundle.forecaster = std::move(model);
  } else {
    std::fprintf(stderr, "unknown --model=%s (tft|deepar|mlp)\n",
                 kind.c_str());
    std::exit(2);
  }
  return bundle;
}

Status SaveModel(const ModelBundle& bundle, const std::string& path) {
  if (bundle.tft != nullptr) {
    return bundle.tft->Save(path);
  }
  if (bundle.deepar != nullptr) {
    return bundle.deepar->Save(path);
  }
  return bundle.mlp->Save(path);
}

Status LoadModel(ModelBundle* bundle, const std::string& path) {
  if (bundle->tft != nullptr) {
    return bundle->tft->Load(path);
  }
  if (bundle->deepar != nullptr) {
    return bundle->deepar->Load(path);
  }
  return bundle->mlp->Load(path);
}

forecast::ForecastInput TailInput(const ts::TimeSeries& series,
                                  size_t context) {
  if (series.size() < context) {
    std::fprintf(stderr, "series has %zu points; need >= %zu for context\n",
                 series.size(), context);
    std::exit(1);
  }
  forecast::ForecastInput input;
  input.start_index = series.size() - context;
  input.step_minutes = series.step_minutes;
  input.context.assign(series.values.end() - static_cast<long>(context),
                       series.values.end());
  return input;
}

// ------------------------------------------------------------ subcommands ---

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.Require("out");
  trace::TraceProfile profile = flags.Get("trace", "alibaba") == "google"
                                    ? trace::GoogleProfile()
                                    : trace::AlibabaProfile();
  const int days = flags.GetInt("days", 21);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  trace::SyntheticTraceGenerator generator(profile, seed);
  ts::TimeSeries series =
      generator.GenerateCpu(static_cast<size_t>(days) * 144);
  if (Status s = ts::SaveTimeSeriesCsv(out, series); !s.ok()) {
    Fail(s);
  }
  std::printf("wrote %zu steps (%d days of %s) to %s\n", series.size(),
              days, profile.name.c_str(), out.c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  const std::string ckpt = flags.Require("ckpt");
  ts::TimeSeries series = LoadSeries(flags);
  ModelBundle bundle = BuildModel(flags);
  std::printf("training %s on %zu points...\n",
              bundle.forecaster->Name().c_str(), series.size());
  if (Status s = bundle.forecaster->Fit(series); !s.ok()) {
    Fail(s);
  }
  if (Status s = SaveModel(bundle, ckpt); !s.ok()) {
    Fail(s);
  }
  std::printf("checkpoint written to %s\n", ckpt.c_str());
  return 0;
}

int CmdForecast(const Flags& flags) {
  const std::string ckpt = flags.Require("ckpt");
  ts::TimeSeries series = LoadSeries(flags);
  ModelBundle bundle = BuildModel(flags);
  if (Status s = LoadModel(&bundle, ckpt); !s.ok()) {
    Fail(s);
  }
  auto fc = bundle.forecaster->Predict(
      TailInput(series, bundle.forecaster->ContextLength()));
  if (!fc.ok()) {
    Fail(fc.status());
  }
  std::printf("%6s", "step");
  for (double tau : fc->Levels()) {
    std::printf("  q%-8.2f", tau);
  }
  std::printf("\n");
  for (size_t h = 0; h < fc->Horizon(); ++h) {
    std::printf("%6zu", h);
    for (size_t q = 0; q < fc->Levels().size(); ++q) {
      std::printf("  %-9.2f", fc->ValueAtIndex(h, q));
    }
    std::printf("\n");
  }
  return 0;
}

int CmdPlan(const Flags& flags) {
  const std::string ckpt = flags.Require("ckpt");
  ts::TimeSeries series = LoadSeries(flags);
  ModelBundle bundle = BuildModel(flags);
  if (Status s = LoadModel(&bundle, ckpt); !s.ok()) {
    Fail(s);
  }
  core::ScalingConfig config;
  config.theta = flags.GetDouble("theta", series.Mean() / 4.0);
  config.min_nodes = flags.GetInt("min-nodes", 1);
  const double tau = flags.GetDouble("tau", 0.9);
  core::RobustAutoScalingManager manager(
      bundle.forecaster.get(),
      std::make_unique<core::RobustQuantileAllocator>(tau), config);
  auto plan = manager.PlanNext(series);
  if (!plan.ok()) {
    Fail(plan.status());
  }
  std::printf("theta=%.2f tau=%.2f\n", config.theta, tau);
  std::printf("%6s  %12s  %12s  %6s\n", "step", "w^0.5", "w^tau", "nodes");
  for (size_t h = 0; h < plan->nodes.size(); ++h) {
    std::printf("%6zu  %12.2f  %12.2f  %6d\n", h,
                plan->forecast.Value(h, 0.5), plan->forecast.Value(h, tau),
                plan->nodes[h]);
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  const std::string ckpt = flags.Require("ckpt");
  ts::TimeSeries series = LoadSeries(flags);
  ModelBundle bundle = BuildModel(flags);
  if (Status s = LoadModel(&bundle, ckpt); !s.ok()) {
    Fail(s);
  }
  const size_t test_steps =
      static_cast<size_t>(flags.GetInt("test-steps", 432));
  if (series.size() <= test_steps + bundle.forecaster->ContextLength()) {
    std::fprintf(stderr, "series too short for --test-steps=%zu\n",
                 test_steps);
    return 1;
  }
  auto [train, test] = series.SplitTail(test_steps);
  auto rolled = forecast::RollForecasts(*bundle.forecaster, train, test,
                                        bundle.forecaster->Horizon());
  if (!rolled.ok()) {
    Fail(rolled.status());
  }
  auto report = ts::EvaluateForecasts(rolled->forecasts, rolled->actuals,
                                      bundle.forecaster->Levels());
  std::printf("windows=%zu points=%zu\n", rolled->forecasts.size(),
              report.num_points);
  std::printf("mean_wQL=%.4f  MSE=%.2f  MAE=%.2f\n", report.mean_wql,
              report.mse, report.mae);
  for (const auto& [tau, cov] : report.coverage) {
    std::printf("  tau=%.2f  wQL=%.4f  coverage=%.3f\n", tau,
                report.wql.at(tau), cov);
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: rpas <generate|train|forecast|plan|evaluate> "
               "[--flags]\n(see the header of tools/rpas_cli.cc)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "generate") {
    return CmdGenerate(flags);
  }
  if (command == "train") {
    return CmdTrain(flags);
  }
  if (command == "forecast") {
    return CmdForecast(flags);
  }
  if (command == "plan") {
    return CmdPlan(flags);
  }
  if (command == "evaluate") {
    return CmdEvaluate(flags);
  }
  Usage();
  return 2;
}
